(* Cross-layer integration tests: serialization, proof transplant
   rejection, chained CRPC matmuls with a shared challenge, and
   failure-injection on the wire format. *)

module Fr = Zkvc_field.Fr
module B = Zkvc_num.Bigint
module G1 = Zkvc_curve.G1
module G2 = Zkvc_curve.G2
module Groth16 = Zkvc_groth16.Groth16
module Spartan = Zkvc_spartan.Spartan
module Mc = Zkvc.Matmul_circuit
module Mcf = Mc.Make (Fr)
module Mspec = Zkvc.Matmul_spec
module Spec = Mspec.Make (Fr)
module Bld = Zkvc_r1cs.Builder.Make (Fr)
module Cs = Zkvc_r1cs.Constraint_system.Make (Fr)
module L = Zkvc_r1cs.Lc.Make (Fr)
module G = Zkvc_r1cs.Gadgets.Make (Fr)
module T = Zkvc_transcript.Transcript
module Ch = T.Challenge (Fr)

let st = Random.State.make [| 606 |]
let check_bool = Alcotest.(check bool)

(* ---------------- point / proof serialization ---------------- *)

let serialization_tests =
  [ Alcotest.test_case "G1 roundtrip" `Quick (fun () ->
        for _ = 1 to 10 do
          let p = G1.random st in
          check_bool "same point" true (G1.equal p (G1.of_bytes_exn (G1.to_bytes p)))
        done;
        check_bool "infinity" true (G1.is_zero (G1.of_bytes_exn (G1.to_bytes G1.zero))));
    Alcotest.test_case "G2 roundtrip" `Quick (fun () ->
        for _ = 1 to 5 do
          let p = G2.random st in
          check_bool "same point" true (G2.equal p (G2.of_bytes_exn (G2.to_bytes p)))
        done);
    Alcotest.test_case "off-curve points rejected" `Quick (fun () ->
        let bytes = G1.to_bytes (G1.random st) in
        (* corrupt the y coordinate's low byte *)
        let last = Bytes.length bytes - 1 in
        Bytes.set bytes last (Char.chr (Char.code (Bytes.get bytes last) lxor 1));
        check_bool "rejected" true
          (match G1.of_bytes_exn bytes with
           | _ -> false
           | exception Invalid_argument _ -> true));
    Alcotest.test_case "bad tag rejected" `Quick (fun () ->
        let bytes = G1.to_bytes (G1.random st) in
        Bytes.set bytes 0 '\007';
        check_bool "rejected" true
          (match G1.of_bytes_exn bytes with
           | _ -> false
           | exception Invalid_argument _ -> true));
    Alcotest.test_case "compressed point roundtrips" `Quick (fun () ->
        for _ = 1 to 10 do
          let p = G1.random st in
          let c = G1.to_bytes_compressed p in
          Alcotest.(check int) "33 bytes" 33 (Bytes.length c);
          check_bool "g1 compressed roundtrip" true
            (G1.equal p (G1.of_bytes_compressed_exn c))
        done;
        check_bool "g1 infinity" true
          (G1.is_zero (G1.of_bytes_compressed_exn (G1.to_bytes_compressed G1.zero)));
        for _ = 1 to 3 do
          let p = G2.random st in
          let c = G2.to_bytes_compressed p in
          Alcotest.(check int) "65 bytes" 65 (Bytes.length c);
          check_bool "g2 compressed roundtrip" true
            (G2.equal p (G2.of_bytes_compressed_exn c))
        done);
    Alcotest.test_case "invalid compressed x rejected" `Quick (fun () ->
        (* find an x that is NOT on the curve and check rejection *)
        let rec bad_x k =
          let x = Zkvc_field.Fq.of_int k in
          let rhs = Zkvc_field.Fq.add (Zkvc_field.Fq.mul x (Zkvc_field.Fq.sqr x)) (Zkvc_field.Fq.of_int 3) in
          let module S = Zkvc_field.Sqrt.Make (Zkvc_field.Fq) in
          if S.is_square rhs then bad_x (k + 1) else x
        in
        let x = bad_x 2 in
        let bytes = Bytes.cat (Bytes.make 1 '\002') (Zkvc_field.Fq.to_bytes x) in
        check_bool "rejected" true
          (match G1.of_bytes_compressed_exn bytes with
           | _ -> false
           | exception Invalid_argument _ -> true));
    Alcotest.test_case "groth16 proof bytes roundtrip and verify" `Slow (fun () ->
        let b = Bld.create () in
        let x = Bld.alloc b (Fr.of_int 5) in
        let x2 = G.mul b (L.of_var x) (L.of_var x) in
        let out = Bld.alloc_input b (Bld.value b x2) in
        G.assert_equal b (L.of_var out) (L.of_var x2);
        let cs, assignment = Bld.finalize b in
        let qap = Groth16.Qap.create cs in
        let pk, vk = Groth16.setup st qap in
        let proof = Groth16.prove st pk qap assignment in
        let bytes = Groth16.proof_to_bytes proof in
        Alcotest.(check int) "wire size" 259 (Bytes.length bytes);
        let proof' = Groth16.proof_of_bytes_exn bytes in
        check_bool "deserialized proof verifies" true
          (Groth16.verify vk ~public_inputs:[ Fr.of_int 25 ] proof');
        (* flipping any single byte must break parsing or verification *)
        let target = Bytes.copy bytes in
        Bytes.set target 40 (Char.chr (Char.code (Bytes.get target 40) lxor 0x80));
        check_bool "tampered bytes rejected" true
          (match Groth16.proof_of_bytes_exn target with
           | p -> not (Groth16.verify vk ~public_inputs:[ Fr.of_int 25 ] p)
           | exception Invalid_argument _ -> true);
        (* compressed wire format: 131 bytes, roundtrips and verifies *)
        let cbytes = Groth16.proof_to_bytes_compressed proof in
        Alcotest.(check int) "compressed size" 131 (Bytes.length cbytes);
        let proof'' = Groth16.proof_of_bytes_compressed_exn cbytes in
        check_bool "decompressed proof verifies" true
          (Groth16.verify vk ~public_inputs:[ Fr.of_int 25 ] proof'')) ]

(* ---------------- proof transplant across circuits ---------------- *)

let transplant_tests =
  [ Alcotest.test_case "proof for circuit A rejected by circuit B's vk" `Slow (fun () ->
        let make_circuit k =
          let b = Bld.create () in
          let x = Bld.alloc b (Fr.of_int k) in
          let acc = ref (L.of_var x) in
          for _ = 1 to 3 do
            acc := L.of_var (G.mul b !acc (L.of_var x))
          done;
          let out = Bld.alloc_input b (Bld.eval b !acc) in
          G.assert_equal b (L.of_var out) !acc;
          Bld.finalize b
        in
        let cs_a, asg_a = make_circuit 2 in
        let cs_b, _ = make_circuit 2 in
        let qap_a = Groth16.Qap.create cs_a in
        let qap_b = Groth16.Qap.create cs_b in
        let pk_a, _vk_a = Groth16.setup st qap_a in
        let _pk_b, vk_b = Groth16.setup st qap_b in
        let proof = Groth16.prove st pk_a qap_a asg_a in
        (* same statement shape, different CRS: must not verify *)
        check_bool "transplant rejected" false
          (Groth16.verify vk_b ~public_inputs:[ asg_a.(1) ] proof)) ]

(* ---------------- chained matmuls, shared challenge ---------------- *)

let chained_tests =
  [ Alcotest.test_case "two chained CRPC matmuls with a joint challenge" `Quick (fun () ->
        (* Y1 = X · W1 ; Y2 = Y1 · W2 — Y1's wires are shared, and a single
           Fiat–Shamir challenge binds the whole pipeline *)
        let d1 = Mspec.dims ~a:3 ~n:4 ~b:5 and d2 = Mspec.dims ~a:3 ~n:5 ~b:2 in
        let x = Spec.random_matrix st ~rows:3 ~cols:4 ~bound:50 in
        let w1 = Spec.random_matrix st ~rows:4 ~cols:5 ~bound:50 in
        let w2 = Spec.random_matrix st ~rows:5 ~cols:2 ~bound:50 in
        let y1 = Spec.multiply x w1 in
        let y2 = Spec.multiply y1 w2 in
        (* joint challenge over every matrix in the pipeline *)
        let tr = T.create ~label:"chain" in
        List.iter
          (fun m -> Array.iter (fun row -> Ch.absorb_array tr ~label:"m" row) m)
          [ x; w1; w2; y1; y2 ];
        let challenge = Ch.challenge tr ~label:"z" in
        let b = Bld.create () in
        let alloc m = Array.map (Array.map (fun v -> Bld.alloc b v)) m in
        let xw = alloc x and w1w = alloc w1 and w2w = alloc w2 in
        let y1w = alloc y1 and y2w = alloc y2 in
        Mcf.constrain b Mc.Crpc_psq ~challenge ~x:xw ~w:w1w ~y:y1w d1;
        Mcf.constrain b Mc.Crpc_psq ~challenge ~x:y1w ~w:w2w ~y:y2w d2;
        let cs, assignment = Bld.finalize b in
        Cs.check_satisfied cs assignment;
        Alcotest.(check int) "n1 + n2 constraints" (4 + 5) (Cs.num_constraints cs);
        (* corrupting the intermediate Y1 must break one of the two links *)
        let bad = Array.copy assignment in
        (* y1 wires are aux; find one by value and perturb *)
        let target = y1.(1).(2) in
        let idx = ref (-1) in
        Array.iteri (fun i v -> if !idx < 0 && i > 0 && Fr.equal v target then idx := i) bad;
        bad.(!idx) <- Fr.add bad.(!idx) Fr.one;
        check_bool "corrupt intermediate caught" false (Cs.is_satisfied cs bad));
    Alcotest.test_case "verifier-recomputed challenge mismatch detected" `Quick (fun () ->
        (* a prover that commits to a wrong Y gets a different challenge
           than one derived from the correct Y — the binding the
           commit-then-prove flow relies on *)
        let _d = Mspec.dims ~a:2 ~n:3 ~b:2 in
        let x = Spec.random_matrix st ~rows:2 ~cols:3 ~bound:50 in
        let w = Spec.random_matrix st ~rows:3 ~cols:2 ~bound:50 in
        let y = Spec.multiply x w in
        let y_bad = Array.map Array.copy y in
        y_bad.(0).(0) <- Fr.add y_bad.(0).(0) Fr.one;
        let z_honest = Mcf.derive_challenge ~x ~w ~y in
        let z_bad = Mcf.derive_challenge ~x ~w ~y:y_bad in
        check_bool "challenges differ" false (Fr.equal z_honest z_bad)) ]

(* ---------------- spartan wire-level failure injection ---------------- *)

let spartan_tests =
  [ Alcotest.test_case "proof of a different instance rejected" `Quick (fun () ->
        let circuit k =
          let b = Bld.create () in
          let x = Bld.alloc b (Fr.of_int k) in
          let sq = G.mul b (L.of_var x) (L.of_var x) in
          let out = Bld.alloc_input b (Bld.value b sq) in
          G.assert_equal b (L.of_var out) (L.of_var sq);
          Bld.finalize b
        in
        let cs1, asg1 = circuit 4 in
        let inst1 = Spartan.preprocess cs1 in
        let key1 = Spartan.setup inst1 in
        let proof = Spartan.prove st key1 inst1 asg1 in
        check_bool "honest" true (Spartan.verify key1 inst1 ~public_inputs:[ Fr.of_int 16 ] proof);
        (* same circuit shape, different public input: rejected *)
        check_bool "wrong io" false
          (Spartan.verify key1 inst1 ~public_inputs:[ Fr.of_int 17 ] proof)) ]

(* ---------------- groth16 on random gadget circuits ---------------- *)

let random_circuit_tests =
  [ Alcotest.test_case "groth16 proves random gadget circuits" `Slow (fun () ->
        for seed = 1 to 3 do
          let rng = Random.State.make [| seed; 909 |] in
          let b = Bld.create () in
          (* a random mix of gadgets over a few witness wires *)
          let xs = Array.init 4 (fun _ -> Bld.alloc b (Fr.of_int (Random.State.int rng 200))) in
          ignore (G.bits_of b ~width:8 (L.of_var xs.(0)));
          ignore (G.max_of b ~width:8 (Array.to_list (Array.map L.of_var xs)));
          ignore (G.is_zero b (L.sub (L.of_var xs.(1)) (L.of_var xs.(2))));
          let prod = G.product b (Array.to_list (Array.map L.of_var xs)) in
          let out = Bld.alloc_input b (Bld.eval b prod) in
          G.assert_equal b (L.of_var out) prod;
          let cs, assignment = Bld.finalize b in
          Cs.check_satisfied cs assignment;
          let qap = Groth16.Qap.create cs in
          let pk, vk = Groth16.setup rng qap in
          let proof = Groth16.prove rng pk qap assignment in
          check_bool
            (Printf.sprintf "random circuit %d verifies" seed)
            true
            (Groth16.verify vk ~public_inputs:[ assignment.(1) ] proof)
        done) ]

let () =
  Alcotest.run "zkvc_integration"
    [ ("serialization", serialization_tests);
      ("transplant", transplant_tests);
      ("chained-crpc", chained_tests);
      ("spartan-reject", spartan_tests);
      ("random-circuits", random_circuit_tests) ]
