module Fr = Zkvc_field.Fr
module G1 = Zkvc_curve.G1
module Kzg = Zkvc_kzg.Kzg
module P = Zkvc_poly.Dense_poly.Make (Fr)
module Mc = Zkvc.Matmul_circuit
module Mcf = Mc.Make (Fr)
module Spec = Zkvc.Matmul_spec.Make (Fr)
module Mspec = Zkvc.Matmul_spec
module Bld = Zkvc_r1cs.Builder.Make (Fr)
module Cs = Zkvc_r1cs.Constraint_system.Make (Fr)

let st = Random.State.make [| 424242 |]
let check_bool = Alcotest.(check bool)
let srs = Kzg.setup st ~degree:64

let tests =
  [ Alcotest.test_case "commit/open/verify roundtrip" `Quick (fun () ->
        for _ = 1 to 5 do
          let p = P.random st ~degree:(Random.State.int st 60) in
          let c = Kzg.commit srs p in
          let z = Fr.random st in
          let opening = Kzg.open_at srs p z in
          check_bool "value correct" true (Fr.equal opening.Kzg.value (P.eval p z));
          check_bool "verifies" true (Kzg.verify srs c opening)
        done);
    Alcotest.test_case "wrong value rejected" `Quick (fun () ->
        let p = P.random st ~degree:10 in
        let c = Kzg.commit srs p in
        let opening = Kzg.open_at srs p (Fr.of_int 7) in
        let bad = { opening with Kzg.value = Fr.add opening.Kzg.value Fr.one } in
        check_bool "rejected" false (Kzg.verify srs c bad));
    Alcotest.test_case "wrong commitment rejected" `Quick (fun () ->
        let p = P.random st ~degree:10 and q = P.random st ~degree:10 in
        let cq = Kzg.commit srs q in
        let opening = Kzg.open_at srs p (Fr.of_int 9) in
        check_bool "rejected" false (Kzg.verify srs cq opening));
    Alcotest.test_case "zero polynomial and constants" `Quick (fun () ->
        let c = Kzg.commit srs P.zero in
        check_bool "zero commits to O" true (G1.is_zero c);
        let p = P.constant (Fr.of_int 42) in
        let c = Kzg.commit srs p in
        let opening = Kzg.open_at srs p (Fr.of_int 5) in
        check_bool "constant verifies" true (Kzg.verify srs c opening);
        check_bool "constant value" true (Fr.equal opening.Kzg.value (Fr.of_int 42)));
    Alcotest.test_case "degree bound enforced" `Quick (fun () ->
        check_bool "raises" true
          (match Kzg.commit srs (P.random st ~degree:100) with
           | _ -> false
           | exception Invalid_argument _ -> true));
    Alcotest.test_case "committed-weight CRPC flow" `Quick (fun () ->
        (* the deployment flow: W committed once (KZG), per-inference
           challenge bound to that commitment + public X, Y *)
        let d = Mspec.dims ~a:3 ~n:4 ~b:3 in
        let x = Spec.random_matrix st ~rows:3 ~cols:4 ~bound:50 in
        let w = Spec.random_matrix st ~rows:4 ~cols:3 ~bound:50 in
        let y = Spec.multiply x w in
        let w_comm = Kzg.commit_matrix srs w in
        let challenge = Kzg.derive_challenge w_comm ~x ~y in
        let b = Bld.create () in
        let _ = Mcf.build b Mc.Crpc_psq ~challenge ~x ~w d in
        let cs, assignment = Bld.finalize b in
        Cs.check_satisfied cs assignment;
        (* different W (hence different commitment) gives a different
           challenge: the commitment binds the weights *)
        let w2 = Spec.random_matrix st ~rows:4 ~cols:3 ~bound:50 in
        let w_comm2 = Kzg.commit_matrix srs w2 in
        check_bool "challenge bound to W" false
          (Fr.equal challenge (Kzg.derive_challenge w_comm2 ~x ~y))) ]

let () = Alcotest.run "zkvc_kzg" [ ("kzg", tests) ]
