lib/num/bigint.mli: Bytes Format Random
