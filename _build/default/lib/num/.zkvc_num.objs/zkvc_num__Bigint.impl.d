lib/num/bigint.ml: Array Buffer Bytes Char Format List Printf Random Stdlib String
