(** Arbitrary-precision signed integers.

    Vendored substitute for [zarith] (unavailable in this environment).
    Magnitudes are little-endian arrays of 26-bit limbs stored in native
    OCaml [int]s, so limb products fit comfortably in 63-bit arithmetic.
    Used for field/curve parameters, Montgomery constants, exponents of the
    pairing final exponentiation, and decimal/hex I/O. Hot loops of the
    library never touch this module: field elements use fixed-width
    Montgomery representation in {!Zkvc_field}. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t

(** [to_int_opt n] is [Some i] when [n] fits in a native [int]. *)
val to_int_opt : t -> int option

(** Parses an optionally ['-']-prefixed decimal string, or hexadecimal when
    prefixed with ["0x"]. Raises [Invalid_argument] on malformed input. *)
val of_string : string -> t

val to_string : t -> string
val to_hex : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_even : t -> bool
val sign : t -> int
val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], [r] having the sign of [a]
    (truncated division, like OCaml's [/] and [mod]). Raises
    [Division_by_zero] when [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [erem a b] is the non-negative remainder of [a] modulo [abs b]. *)
val erem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

(** [bit n i] is bit [i] of [abs n]. *)
val bit : t -> int -> bool

(** Number of significant bits of the magnitude; [num_bits zero = 0]. *)
val num_bits : t -> int

(** [pow base exp] with a non-negative [int] exponent. *)
val pow : t -> int -> t

val gcd : t -> t -> t

(** [mod_inverse a m] is the inverse of [a] modulo [m].
    Raises [Invalid_argument] when [gcd a m <> 1]. *)
val mod_inverse : t -> t -> t

(** [mod_pow base exp m]: modular exponentiation with non-negative [exp]. *)
val mod_pow : t -> t -> t -> t

(** Big-endian byte serialisation of the magnitude, left-padded to [len]
    bytes. Raises [Invalid_argument] when the value needs more bytes. *)
val to_bytes_be : t -> int -> Bytes.t

val of_bytes_be : Bytes.t -> t

(** Uniform value in [\[0, bound)] using the given PRNG state. *)
val random : Random.State.t -> t -> t

val pp : Format.formatter -> t -> unit
