(* Little-endian base-2^26 magnitudes; limb products fit in 52 bits so all
   intermediate sums stay well inside OCaml's 63-bit native ints. *)

let limb_bits = 26
let limb_base = 1 lsl limb_bits
let limb_mask = limb_base - 1

type t = { sign : int; (* 1 or -1; zero has sign 1 and empty magnitude *)
           mag : int array (* little-endian, no trailing zero limbs *) }

let zero = { sign = 1; mag = [||] }

let is_zero n = Array.length n.mag = 0

(* ------------------------------------------------------------------ *)
(* Magnitude helpers                                                    *)

let mag_normalize a =
  let k = ref (Array.length a) in
  while !k > 0 && a.(!k - 1) = 0 do decr k done;
  if !k = Array.length a then a else Array.sub a 0 !k

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + Stdlib.max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let av = if i < la then a.(i) else 0 in
    let bv = if i < lb then b.(i) else 0 in
    let s = av + bv + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  assert (!carry = 0);
  mag_normalize r

(* Requires [a >= b]. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let s = a.(i) - bv - !borrow in
    if s < 0 then begin r.(i) <- s + limb_base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  mag_normalize r

let mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let s = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- s land limb_mask;
          carry := s lsr limb_bits
        done;
        (* propagate the remaining carry (can exceed one limb only briefly) *)
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land limb_mask;
          carry := s lsr limb_bits;
          incr k
        done
      end
    done;
    mag_normalize r
  end

let mag_num_bits a =
  let l = Array.length a in
  if l = 0 then 0
  else
    let top = a.(l - 1) in
    let rec width n acc = if n = 0 then acc else width (n lsr 1) (acc + 1) in
    ((l - 1) * limb_bits) + width top 0

let mag_bit a i =
  let limb = i / limb_bits and off = i mod limb_bits in
  if limb >= Array.length a then false else (a.(limb) lsr off) land 1 = 1

let mag_shift_left a k =
  if Array.length a = 0 || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land limb_mask);
      r.(i + limbs + 1) <- v lsr limb_bits
    done;
    mag_normalize r
  end

let mag_shift_right a k =
  if Array.length a = 0 || k = 0 then a
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let la = Array.length a in
    if limbs >= la then [||]
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = a.(i + limbs) lsr bits in
        let hi = if i + limbs + 1 < la then (a.(i + limbs + 1) lsl (limb_bits - bits)) land limb_mask else 0 in
        r.(i) <- if bits = 0 then a.(i + limbs) else lo lor hi
      done;
      mag_normalize r
    end
  end

(* [mag_divmod_small a d] with [0 < d < 2^26]. *)
let mag_divmod_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (mag_normalize q, !r)

(* Bit-by-bit long division; only used for parameter-setup paths. *)
let mag_divmod a b =
  if Array.length b = 0 then raise Division_by_zero;
  let c = mag_compare a b in
  if c < 0 then ([||], a)
  else if Array.length b = 1 then begin
    let q, r = mag_divmod_small a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else begin
    let nb = mag_num_bits a in
    let qlimbs = Array.make (Array.length a) 0 in
    let r = ref [||] in
    for i = nb - 1 downto 0 do
      r := mag_shift_left !r 1;
      if mag_bit a i then
        r := (if Array.length !r = 0 then [| 1 |]
              else begin
                let r' = Array.copy !r in
                r'.(0) <- r'.(0) lor 1; r'
              end);
      if mag_compare !r b >= 0 then begin
        r := mag_sub !r b;
        qlimbs.(i / limb_bits) <- qlimbs.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
    done;
    (mag_normalize qlimbs, !r)
  end

(* ------------------------------------------------------------------ *)
(* Signed interface                                                     *)

let mk sign mag =
  let mag = mag_normalize mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    let v = abs n in
    let rec limbs v = if v = 0 then [] else (v land limb_mask) :: limbs (v lsr limb_bits) in
    { sign; mag = Array.of_list (limbs v) }
  end

let one = of_int 1
let two = of_int 2

let to_int_opt n =
  if mag_num_bits n.mag > 62 then None
  else begin
    let v = Array.fold_right (fun limb acc -> (acc lsl limb_bits) lor limb) n.mag 0 in
    Some (n.sign * v)
  end

let sign n = if is_zero n then 0 else n.sign

let neg n = if is_zero n then zero else { n with sign = -n.sign }
let abs n = { n with sign = 1 }

let compare a b =
  match sign a, sign b with
  | sa, sb when sa <> sb -> Stdlib.compare sa sb
  | 0, _ -> 0
  | s, _ -> s * mag_compare a.mag b.mag

let equal a b = compare a b = 0
let lt a b = compare a b < 0
let le a b = compare a b <= 0
let gt a b = compare a b > 0
let ge a b = compare a b >= 0
let min a b = if le a b then a else b
let max a b = if ge a b then a else b

let add a b =
  if is_zero a then b
  else if is_zero b then a
  else if a.sign = b.sign then mk a.sign (mag_add a.mag b.mag)
  else begin
    let c = mag_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then mk a.sign (mag_sub a.mag b.mag)
    else mk b.sign (mag_sub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if is_zero a || is_zero b then zero
  else mk (a.sign * b.sign) (mag_mul a.mag b.mag)

let divmod a b =
  if is_zero b then raise Division_by_zero;
  let qm, rm = mag_divmod a.mag b.mag in
  (mk (a.sign * b.sign) qm, mk a.sign rm)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let erem a b =
  let r = rem a b in
  if sign r < 0 then add r (abs b) else r

let shift_left a k = if k < 0 then invalid_arg "Bigint.shift_left" else mk a.sign (mag_shift_left a.mag k)
let shift_right a k = if k < 0 then invalid_arg "Bigint.shift_right" else mk a.sign (mag_shift_right a.mag k)

let bit a i = mag_bit a.mag i
let num_bits a = mag_num_bits a.mag
let is_even a = not (bit a 0)

let pow base e =
  if e < 0 then invalid_arg "Bigint.pow";
  let rec go acc base e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc base else acc in
      go acc (mul base base) (e lsr 1)
    end
  in
  go one base e

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let mod_inverse a m =
  (* extended Euclid on (a mod m, m) *)
  let a = erem a m in
  let rec go old_r r old_s s =
    if is_zero r then (old_r, old_s)
    else begin
      let q = div old_r r in
      go r (sub old_r (mul q r)) s (sub old_s (mul q s))
    end
  in
  let g, x = go a m one zero in
  if not (equal g one) then invalid_arg "Bigint.mod_inverse: not coprime";
  erem x m

let mod_pow base e m =
  if sign e < 0 then invalid_arg "Bigint.mod_pow";
  let base = erem base m in
  let nb = num_bits e in
  let acc = ref (erem one m) in
  for i = nb - 1 downto 0 do
    acc := erem (mul !acc !acc) m;
    if bit e i then acc := erem (mul !acc base) m
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Conversions                                                          *)

let ten_pow7 = 10_000_000

let of_decimal s start =
  let acc = ref zero in
  let chunk = ref 0 and chunk_len = ref 0 in
  let flush () =
    if !chunk_len > 0 then begin
      let scale = of_int (int_of_float (10. ** float_of_int !chunk_len)) in
      acc := add (mul !acc scale) (of_int !chunk);
      chunk := 0; chunk_len := 0
    end
  in
  for i = start to String.length s - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string";
    chunk := (!chunk * 10) + (Char.code c - Char.code '0');
    incr chunk_len;
    if !chunk_len = 7 then flush ()
  done;
  flush ();
  !acc

let of_hex_body s start =
  let acc = ref zero in
  for i = start to String.length s - 1 do
    let c = Char.lowercase_ascii s.[i] in
    let v =
      if c >= '0' && c <= '9' then Char.code c - Char.code '0'
      else if c >= 'a' && c <= 'f' then 10 + Char.code c - Char.code 'a'
      else invalid_arg "Bigint.of_string: bad hex digit"
    in
    acc := add (shift_left !acc 4) (of_int v)
  done;
  !acc

let of_string s =
  if String.length s = 0 then invalid_arg "Bigint.of_string: empty";
  let negv, start = if s.[0] = '-' then (true, 1) else (false, 0) in
  if String.length s - start = 0 then invalid_arg "Bigint.of_string: empty";
  let v =
    if String.length s - start > 2 && s.[start] = '0' && (s.[start + 1] = 'x' || s.[start + 1] = 'X')
    then of_hex_body s (start + 2)
    else of_decimal s start
  in
  if negv then neg v else v

let to_string n =
  if is_zero n then "0"
  else begin
    let buf = Buffer.create 64 in
    let rec go m acc =
      if Array.length m = 0 then acc
      else begin
        let q, r = mag_divmod_small m ten_pow7 in
        go q (r :: acc)
      end
    in
    let chunks = go n.mag [] in
    if n.sign < 0 then Buffer.add_char buf '-';
    (match chunks with
     | [] -> ()
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%07d" c)) rest);
    Buffer.contents buf
  end

let to_hex n =
  if is_zero n then "0x0"
  else begin
    let buf = Buffer.create 64 in
    if n.sign < 0 then Buffer.add_char buf '-';
    Buffer.add_string buf "0x";
    let nb = num_bits n in
    let nibbles = (nb + 3) / 4 in
    let started = ref false in
    for i = nibbles - 1 downto 0 do
      let v =
        (if bit n ((4 * i) + 3) then 8 else 0)
        + (if bit n ((4 * i) + 2) then 4 else 0)
        + (if bit n ((4 * i) + 1) then 2 else 0)
        + (if bit n (4 * i) then 1 else 0)
      in
      if v <> 0 || !started then begin
        started := true;
        Buffer.add_char buf "0123456789abcdef".[v]
      end
    done;
    Buffer.contents buf
  end

let to_bytes_be n len =
  let nb = num_bits n in
  if nb > 8 * len then invalid_arg "Bigint.to_bytes_be: value too large";
  let b = Bytes.make len '\000' in
  for i = 0 to len - 1 do
    let byte = ref 0 in
    for j = 7 downto 0 do
      byte := (!byte lsl 1) lor (if bit n ((8 * i) + j) then 1 else 0)
    done;
    Bytes.set b (len - 1 - i) (Char.chr !byte)
  done;
  b

let of_bytes_be b =
  let acc = ref zero in
  Bytes.iter (fun c -> acc := add (shift_left !acc 8) (of_int (Char.code c))) b;
  !acc

let random st bound =
  if le bound zero then invalid_arg "Bigint.random: bound must be positive";
  let nb = num_bits bound in
  let nlimbs = ((nb + limb_bits - 1) / limb_bits) in
  let rec draw () =
    let mag = Array.init nlimbs (fun _ -> Random.State.int st limb_base) in
    (* mask the top limb so the rejection rate stays below 1/2 *)
    let top_bits = nb - ((nlimbs - 1) * limb_bits) in
    mag.(nlimbs - 1) <- mag.(nlimbs - 1) land ((1 lsl top_bits) - 1);
    let v = mk 1 mag in
    if lt v bound then v else draw ()
  in
  draw ()

let pp fmt n = Format.pp_print_string fmt (to_string n)
