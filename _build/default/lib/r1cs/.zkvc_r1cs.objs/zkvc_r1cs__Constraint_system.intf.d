lib/r1cs/constraint_system.mli: Format Lc Zkvc_field
