lib/r1cs/builder.ml: Array Constraint_system Lc List Zkvc_field
