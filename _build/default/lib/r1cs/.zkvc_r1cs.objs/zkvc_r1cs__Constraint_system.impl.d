lib/r1cs/constraint_system.ml: Array Format Lc Zkvc_field
