lib/r1cs/lc.mli: Format Zkvc_field
