lib/r1cs/gadgets.mli: Builder Lc Zkvc_field Zkvc_num
