lib/r1cs/gadgets.ml: Builder Lc List Zkvc_field Zkvc_num
