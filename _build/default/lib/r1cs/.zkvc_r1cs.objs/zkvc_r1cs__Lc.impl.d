lib/r1cs/lc.ml: Array Format List Zkvc_field
