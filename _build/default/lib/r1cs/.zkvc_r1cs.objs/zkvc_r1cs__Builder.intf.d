lib/r1cs/builder.mli: Constraint_system Lc Zkvc_field
