(** Mutable circuit builder: gadgets allocate wires together with their
    witness values (single-pass synthesis); [finalize] permutes wires into
    the canonical input-first layout of {!Constraint_system} and returns
    the compiled system plus the full assignment.

    The circuit {e shape} produced by all gadgets in this repository
    depends only on structural parameters (matrix sizes, bit widths),
    never on witness values, so a builder run with dummy values yields the
    same compiled system — which is what the Groth16 trusted setup uses. *)

module Make (F : Zkvc_field.Field_intf.S) : sig
  module L : module type of Lc.Make (F)
  module Cs : module type of Constraint_system.Make (F)

  type t

  val create : unit -> t

  (** Allocate a private witness wire holding [value]. *)
  val alloc : t -> F.t -> L.var

  (** Allocate a public input wire holding [value]. *)
  val alloc_input : t -> F.t -> L.var

  (** The constant-one wire. *)
  val one_var : L.var

  (** Current value of a wire. *)
  val value : t -> L.var -> F.t

  (** Evaluate a linear combination against the current assignment. *)
  val eval : t -> L.t -> F.t

  (** Enforce [a * b = c]. *)
  val enforce : t -> ?label:string -> L.t -> L.t -> L.t -> unit

  val num_constraints : t -> int

  (** Compile: wires permuted to [one; inputs...; aux...], preserving the
      relative allocation order within each class. *)
  val finalize : t -> Cs.t * F.t array

  (** Public-input values in canonical order (excluding the one wire). *)
  val public_inputs : t -> F.t list
end
