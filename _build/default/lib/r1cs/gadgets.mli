(** Reusable R1CS gadgets: products, booleans, bit decomposition,
    comparisons, maxima, verified Euclidean division. These are the
    building blocks of zkVC's non-linear approximations (paper
    Section III-C), which reduce SoftMax/GELU to "bit decomposition plus a
    handful of multiplications". *)

module Make (F : Zkvc_field.Field_intf.S) : sig
  module L : module type of Lc.Make (F)
  module B : module type of Builder.Make (F)

  (** Allocate and constrain the product wire of two LCs. *)
  val mul : B.t -> L.t -> L.t -> L.var

  (** Enforce [x (1 − x) = 0]. *)
  val assert_boolean : B.t -> L.t -> unit

  val alloc_boolean : B.t -> bool -> L.var

  (** Enforce equality of two LCs (one linear constraint). *)
  val assert_equal : B.t -> L.t -> L.t -> unit

  (** Decompose into [width] boolean wires, least-significant first, and
      enforce the weighted sum; doubles as a range proof
      [0 ≤ x < 2^width]. Raises [Invalid_argument] when the witness value
      is already out of range. *)
  val bits_of : B.t -> width:int -> L.t -> L.var list

  val assert_in_range : B.t -> width:int -> L.t -> unit

  (** [assert_le b ~width x y] enforces [x ≤ y] for values below
      [2^width]. *)
  val assert_le : B.t -> width:int -> L.t -> L.t -> unit

  (** Boolean wire set to 1 iff the LC evaluates to zero. *)
  val is_zero : B.t -> L.t -> L.var

  (** [select b cond a c] is [cond ? a : c]; [cond] must be boolean. *)
  val select : B.t -> L.t -> L.t -> L.t -> L.var

  (** Chained product using [n − 1] constraints; empty product is 1. *)
  val product : B.t -> L.t list -> L.t

  (** Maximum of values in [0, 2^width): range checks [max − x_j] plus the
      membership product [Π (max − x_j) = 0] — the two conditions of the
      paper's SoftMax section. *)
  val max_of : B.t -> width:int -> L.t list -> L.var

  (** Verified division by a positive constant:
      [x = q·d + r, 0 ≤ r < d, 0 ≤ q < 2^q_width]; returns [(q, r)]. *)
  val div_by_constant : B.t -> q_width:int -> L.t -> Zkvc_num.Bigint.t -> L.var * L.var

  (** Verified division by a positive wire divisor (one multiplication
      constraint plus range checks); used for SoftMax normalisation. *)
  val div_rem : B.t -> q_width:int -> r_width:int -> L.t -> L.t -> L.var * L.var
end
