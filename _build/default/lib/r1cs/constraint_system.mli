(** Compiled Rank-1 Constraint Systems.

    Canonical wire layout: wire 0 = constant one, wires
    [1..num_inputs] = public inputs, the remaining [num_aux] wires are
    private witness. A satisfying full assignment [z] fulfils
    [⟨A_i, z⟩ · ⟨B_i, z⟩ = ⟨C_i, z⟩] for every constraint [i]. *)

module Make (F : Zkvc_field.Field_intf.S) : sig
  module L : module type of Lc.Make (F)

  type constr = { a : L.t; b : L.t; c : L.t; label : string }

  type t =
    { num_inputs : int; (** public inputs, excluding the constant wire *)
      num_aux : int;
      constraints : constr array }

  (** Total wires including the constant-one wire. *)
  val num_vars : t -> int

  val num_constraints : t -> int
  val num_inputs : t -> int
  val num_aux : t -> int

  exception Unsatisfied of int * string

  (** Checks every constraint; raises {!Unsatisfied} with the index and
      label of the first violated one. *)
  val check_satisfied : t -> F.t array -> unit

  val is_satisfied : t -> F.t array -> bool

  (** Density statistics; [nonzero_a] is the paper's "left wires". *)
  type stats =
    { constraints : int;
      variables : int;
      nonzero_a : int;
      nonzero_b : int;
      nonzero_c : int }

  val stats : t -> stats
  val pp_stats : Format.formatter -> stats -> unit
end
