(** Mutable circuit builder. Gadgets allocate wires together with their
    values (single-pass synthesis); [finalize] permutes wires into the
    canonical input-first layout of {!Constraint_system} and returns the
    compiled system plus the full assignment.

    The circuit *shape* produced by all gadgets in this repository depends
    only on structural parameters (matrix sizes, bit widths), never on the
    witness values, so a builder run with dummy values yields the same
    compiled system — this is what the Groth16 trusted setup uses. *)

module Make (F : Zkvc_field.Field_intf.S) = struct
  module L = Lc.Make (F)
  module Cs = Constraint_system.Make (F)

  type kind = Input | Aux

  type t =
    { mutable values : F.t array; (* growable; slot 0 = one *)
      mutable kinds : kind array;
      mutable n : int; (* wires allocated, including wire 0 *)
      mutable constraints : Cs.constr list (* reversed *) }

  let create () =
    { values = Array.make 16 F.zero;
      kinds = Array.make 16 Aux;
      n = 1;
      constraints = [] }

  let grow b =
    if b.n = Array.length b.values then begin
      let values = Array.make (2 * b.n) F.zero in
      let kinds = Array.make (2 * b.n) Aux in
      Array.blit b.values 0 values 0 b.n;
      Array.blit b.kinds 0 kinds 0 b.n;
      b.values <- values;
      b.kinds <- kinds
    end

  let alloc_kind b kind value =
    grow b;
    let v = b.n in
    b.values.(v) <- value;
    b.kinds.(v) <- kind;
    b.n <- b.n + 1;
    v

  (** Allocate a private witness wire holding [value]. *)
  let alloc b value = alloc_kind b Aux value

  (** Allocate a public input wire holding [value]. *)
  let alloc_input b value = alloc_kind b Input value

  (** The constant-one wire. *)
  let one_var = 0

  let value b v = if v = 0 then F.one else b.values.(v)

  let eval b lc =
    List.fold_left (fun acc (v, c) -> F.add acc (F.mul c (value b v))) F.zero (L.terms lc)

  (** Enforce [a * b = c]. *)
  let enforce b ?(label = "") a bb c =
    b.constraints <- { Cs.a; b = bb; c; label } :: b.constraints

  let num_constraints b = List.length b.constraints

  (** Compile: wires are permuted to [one; inputs...; aux...] preserving
      relative allocation order within each class. *)
  let finalize b =
    let num_inputs = ref 0 and num_aux = ref 0 in
    for i = 1 to b.n - 1 do
      match b.kinds.(i) with
      | Input -> incr num_inputs
      | Aux -> incr num_aux
    done;
    let perm = Array.make b.n 0 in
    let next_input = ref 1 and next_aux = ref (1 + !num_inputs) in
    for i = 1 to b.n - 1 do
      match b.kinds.(i) with
      | Input ->
        perm.(i) <- !next_input;
        incr next_input
      | Aux ->
        perm.(i) <- !next_aux;
        incr next_aux
    done;
    let remap lc = L.map_vars (fun v -> perm.(v)) lc in
    let constraints =
      List.rev_map
        (fun { Cs.a; b = bb; c; label } -> { Cs.a = remap a; b = remap bb; c = remap c; label })
        b.constraints
      |> Array.of_list
    in
    let assignment = Array.make b.n F.one in
    for i = 1 to b.n - 1 do
      assignment.(perm.(i)) <- b.values.(i)
    done;
    ( { Cs.num_inputs = !num_inputs; num_aux = !num_aux; constraints },
      assignment )

  (** Public-input vector in canonical order (excluding the one wire),
      as the verifier would receive it. *)
  let public_inputs b =
    let rec collect i acc =
      if i >= b.n then List.rev acc
      else collect (i + 1) (match b.kinds.(i) with Input -> b.values.(i) :: acc | Aux -> acc)
    in
    collect 1 []
end
