(** Multi-scalar multiplication (Pippenger's bucket method) — the dominant
    cost of the Groth16 prover. The CRPC/PSQ variable-count reductions
    translate directly into fewer bucket additions here. *)

module Bigint = Zkvc_num.Bigint
module Fr = Zkvc_field.Fr

module type Group = sig
  type t

  val zero : t
  val add : t -> t -> t
  val double : t -> t
end

module Make (G : Group) : sig
  (** [msm_bigint points scalars = Σ scalars_i · points_i]. Raises
      [Invalid_argument] on length mismatch. *)
  val msm_bigint : G.t array -> Bigint.t array -> G.t

  val msm : G.t array -> Fr.t array -> G.t

  (** Reference implementation for tests: sum of naive scalar
      multiplications using the supplied [mul]. *)
  val msm_naive : mul:(G.t -> 'scalar -> G.t) -> G.t array -> 'scalar array -> G.t
end
