lib/curve/fq2.ml: Bytes Format Zkvc_field Zkvc_num
