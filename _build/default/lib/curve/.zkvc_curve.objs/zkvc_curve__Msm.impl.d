lib/curve/msm.ml: Array Stdlib Zkvc_field Zkvc_num
