lib/curve/g1.mli: Bytes Format Random Zkvc_field Zkvc_num
