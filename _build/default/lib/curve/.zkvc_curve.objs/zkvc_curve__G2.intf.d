lib/curve/g2.mli: Bytes Format Fq2 Random Zkvc_field Zkvc_num
