lib/curve/bn_params.ml: List Zkvc_field Zkvc_num
