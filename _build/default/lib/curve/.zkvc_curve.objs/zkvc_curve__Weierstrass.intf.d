lib/curve/weierstrass.mli: Bytes Format Zkvc_num
