lib/curve/pairing.ml: Bn_params Fq12 G1 G2 Lazy List Zkvc_field Zkvc_num
