lib/curve/fq12.mli: Format Fq2 Fq6 Random Zkvc_field Zkvc_num
