lib/curve/pairing.mli: Fq12 G1 G2
