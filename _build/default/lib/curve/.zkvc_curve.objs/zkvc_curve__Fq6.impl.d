lib/curve/fq6.ml: Format Fq2
