lib/curve/fq2.mli: Bytes Format Random Zkvc_field Zkvc_num
