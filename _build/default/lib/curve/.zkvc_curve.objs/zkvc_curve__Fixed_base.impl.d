lib/curve/fixed_base.ml: Array Stdlib Zkvc_field Zkvc_num
