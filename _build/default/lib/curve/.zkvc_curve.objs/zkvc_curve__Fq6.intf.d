lib/curve/fq6.mli: Format Fq2 Random
