lib/curve/weierstrass.ml: Bytes Format Zkvc_num
