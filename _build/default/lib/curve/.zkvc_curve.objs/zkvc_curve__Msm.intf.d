lib/curve/msm.mli: Zkvc_field Zkvc_num
