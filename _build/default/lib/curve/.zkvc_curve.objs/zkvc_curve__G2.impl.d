lib/curve/g2.ml: Bn_params Bytes Fq2 Weierstrass Zkvc_field Zkvc_num
