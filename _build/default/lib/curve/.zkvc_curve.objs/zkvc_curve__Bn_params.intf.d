lib/curve/bn_params.mli: Zkvc_num
