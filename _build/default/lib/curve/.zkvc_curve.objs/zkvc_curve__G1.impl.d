lib/curve/g1.ml: Bytes Weierstrass Zkvc_field Zkvc_num
