lib/curve/fq12.ml: Format Fq2 Fq6 Zkvc_num
