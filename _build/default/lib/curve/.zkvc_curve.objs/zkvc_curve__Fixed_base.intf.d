lib/curve/fixed_base.mli: Zkvc_field Zkvc_num
