(** Short Weierstrass curves [y² = x³ + b] in Jacobian coordinates,
    functorised over the coordinate field so the same formulas drive both
    G1 (over Fq) and the G2 twist (over Fq2). The point at infinity is
    encoded as [z = 0]. *)

module Bigint = Zkvc_num.Bigint

module type Coord = sig
  type t

  val zero : t
  val one : t
  val of_int : int -> t
  val equal : t -> t -> bool
  val is_zero : t -> bool
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val double : t -> t
  val mul : t -> t -> t
  val sqr : t -> t
  val inv : t -> t
  val size_in_bytes : int
  val to_bytes : t -> Bytes.t
  val of_bytes_exn : Bytes.t -> t
  val pp : Format.formatter -> t -> unit
end

module Make (F : Coord) (P : sig
  val b : F.t
end) : sig
  type t = { x : F.t; y : F.t; z : F.t }

  val zero : t
  val is_zero : t -> bool
  val of_affine : F.t * F.t -> t

  (** [None] for the point at infinity. *)
  val to_affine : t -> (F.t * F.t) option

  val is_on_curve_affine : F.t * F.t -> bool
  val is_on_curve : t -> bool
  val neg : t -> t
  val double : t -> t
  val add : t -> t -> t
  val sub_point : t -> t -> t
  val equal : t -> t -> bool

  (** Double-and-add scalar multiplication; non-negative scalars only. *)
  val mul : t -> Bigint.t -> t

  (** Serialised size: 1 tag byte + two padded coordinates. *)
  val size_in_bytes : int

  (** Uncompressed affine serialisation with an infinity tag byte. *)
  val to_bytes : t -> Bytes.t

  (** Parses {!to_bytes} output; validates length, tag and the curve
      equation. Raises [Invalid_argument] otherwise. *)
  val of_bytes_exn : Bytes.t -> t

  val pp : Format.formatter -> t -> unit
end
