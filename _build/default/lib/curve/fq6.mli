(** Cubic extension Fq6 = Fq2[v]/(v³ − ξ), ξ = 9 + u. Middle floor of the
    pairing tower. *)

type t = { c0 : Fq2.t; c1 : Fq2.t; c2 : Fq2.t }

val make : Fq2.t -> Fq2.t -> Fq2.t -> t
val zero : t
val one : t
val of_fq2 : Fq2.t -> t
val equal : t -> t -> bool
val is_zero : t -> bool
val is_one : t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val double : t -> t
val mul : t -> t -> t
val sqr : t -> t
val mul_by_fq2 : Fq2.t -> t -> t

(** Multiplication by the tower generator: [(c0,c1,c2)·v = (ξc2, c0, c1)]. *)
val mul_by_v : t -> t

val inv : t -> t
val random : Random.State.t -> t
val pp : Format.formatter -> t -> unit
