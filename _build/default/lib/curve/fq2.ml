module Fq = Zkvc_field.Fq
module Bigint = Zkvc_num.Bigint

type t = { c0 : Fq.t; c1 : Fq.t }

let make c0 c1 = { c0; c1 }
let zero = make Fq.zero Fq.zero
let one = make Fq.one Fq.zero
let of_fq c = make c Fq.zero
let of_int n = of_fq (Fq.of_int n)
let of_strings a b = make (Fq.of_string a) (Fq.of_string b)

let xi = make (Fq.of_int 9) Fq.one

let equal a b = Fq.equal a.c0 b.c0 && Fq.equal a.c1 b.c1
let is_zero a = equal a zero
let is_one a = equal a one

let add a b = make (Fq.add a.c0 b.c0) (Fq.add a.c1 b.c1)
let sub a b = make (Fq.sub a.c0 b.c0) (Fq.sub a.c1 b.c1)
let neg a = make (Fq.neg a.c0) (Fq.neg a.c1)
let double a = add a a

(* (a0 + a1 u)(b0 + b1 u) = (a0b0 - a1b1) + (a0b1 + a1b0) u, since u² = -1. *)
let mul a b =
  let t0 = Fq.mul a.c0 b.c0 and t1 = Fq.mul a.c1 b.c1 in
  let cross = Fq.mul (Fq.add a.c0 a.c1) (Fq.add b.c0 b.c1) in
  make (Fq.sub t0 t1) (Fq.sub cross (Fq.add t0 t1))

let sqr a =
  (* (a0+a1u)² = (a0+a1)(a0-a1) + 2a0a1 u *)
  let s = Fq.mul (Fq.add a.c0 a.c1) (Fq.sub a.c0 a.c1) in
  make s (Fq.double (Fq.mul a.c0 a.c1))

let mul_by_fq k a = make (Fq.mul k a.c0) (Fq.mul k a.c1)

let conj a = make a.c0 (Fq.neg a.c1)

let inv a =
  (* 1/(a0+a1u) = (a0 - a1 u)/(a0² + a1²) *)
  let norm = Fq.add (Fq.sqr a.c0) (Fq.sqr a.c1) in
  if Fq.is_zero norm then raise Division_by_zero;
  let ninv = Fq.inv norm in
  make (Fq.mul a.c0 ninv) (Fq.neg (Fq.mul a.c1 ninv))

let div a b = mul a (inv b)

let pow base e =
  if Bigint.sign e < 0 then invalid_arg "Fq2.pow";
  let nb = Bigint.num_bits e in
  let acc = ref one in
  for i = nb - 1 downto 0 do
    acc := sqr !acc;
    if Bigint.bit e i then acc := mul !acc base
  done;
  !acc

(* Square root for q ≡ 3 (mod 4) (complex-method variant); the candidate is
   verified by squaring, so a wrong branch can only yield [None]. *)
let sqrt a =
  if is_zero a then Some zero
  else begin
    let q = Fq.modulus in
    let e1 = Bigint.shift_right (Bigint.sub q (Bigint.of_int 3)) 2 in (* (q-3)/4 *)
    let e2 = Bigint.shift_right (Bigint.sub q Bigint.one) 1 in (* (q-1)/2 *)
    let a1 = pow a e1 in
    let alpha = mul (sqr a1) a in
    let x0 = mul a1 a in
    let candidate =
      if equal alpha (neg one) then mul (make Fq.zero Fq.one) x0
      else
        let b = pow (add one alpha) e2 in
        mul b x0
    in
    if equal (sqr candidate) a then Some candidate else None
  end

let random st = make (Fq.random st) (Fq.random st)

let size_in_bytes = 2 * Fq.size_in_bytes

let to_bytes a = Bytes.cat (Fq.to_bytes a.c0) (Fq.to_bytes a.c1)

let of_bytes_exn b =
  if Bytes.length b <> size_in_bytes then invalid_arg "Fq2.of_bytes_exn: bad length";
  let half = Fq.size_in_bytes in
  make (Fq.of_bytes_exn (Bytes.sub b 0 half)) (Fq.of_bytes_exn (Bytes.sub b half half))

let pp fmt a = Format.fprintf fmt "(%a + %a*u)" Fq.pp a.c0 Fq.pp a.c1
