(** BN254 G2: the D-type sextic twist [y² = x³ + 3/ξ] over Fq2 with
    ξ = 9 + u. The group of interest is the order-[r] subgroup; its cofactor
    is [q − 1 + t] ({!Bn_params.g2_cofactor}).

    The generator is not hard-coded: it is derived at module initialisation
    by finding a curve point with a small x-coordinate and clearing the
    cofactor, then checked to have order exactly [r]. This removes any
    dependence on transcribed constants. *)

module Fr = Zkvc_field.Fr
module Bigint = Zkvc_num.Bigint

include Weierstrass.Make (Fq2) (struct
  let b = Fq2.div (Fq2.of_int 3) Fq2.xi
end)

let b_twist = Fq2.div (Fq2.of_int 3) Fq2.xi

let generator =
  let rec search k =
    if k > 1000 then failwith "G2: no generator found (unreachable)"
    else begin
      let x = Fq2.make (Zkvc_field.Fq.of_int k) Zkvc_field.Fq.one in
      let rhs = Fq2.add (Fq2.mul x (Fq2.sqr x)) b_twist in
      match Fq2.sqrt rhs with
      | None -> search (k + 1)
      | Some y ->
        let p = of_affine (x, y) in
        let g = mul p Bn_params.g2_cofactor in
        if is_zero g then search (k + 1) else g
    end
  in
  search 0

let () =
  assert (is_on_curve generator);
  (* order exactly r: r·G = O and G ≠ O *)
  assert (is_zero (mul generator Bn_params.r))

let mul_fr p s = mul p (Fr.to_bigint s)

let random st = mul_fr generator (Fr.random st)

let in_subgroup p = is_on_curve p && is_zero (mul p Bn_params.r)

(* parity bit that always flips under negation: low bit of c0, falling
   back to c1 when c0 = 0 *)
let fq2_parity (v : Fq2.t) =
  let low c = Bigint.bit (Zkvc_field.Fq.to_bigint c) 0 in
  if Zkvc_field.Fq.is_zero v.Fq2.c0 then low v.Fq2.c1 else low v.Fq2.c0

let size_in_bytes_compressed = 1 + Fq2.size_in_bytes

let to_bytes_compressed p =
  match to_affine p with
  | None -> Bytes.make size_in_bytes_compressed '\000'
  | Some (x, y) ->
    let tag = if fq2_parity y then '\003' else '\002' in
    Bytes.cat (Bytes.make 1 tag) (Fq2.to_bytes x)

let of_bytes_compressed_exn b =
  if Bytes.length b <> size_in_bytes_compressed then
    invalid_arg "G2.of_bytes_compressed_exn: length";
  match Bytes.get b 0 with
  | '\000' -> zero
  | ('\002' | '\003') as tag ->
    let x = Fq2.of_bytes_exn (Bytes.sub b 1 Fq2.size_in_bytes) in
    let rhs = Fq2.add (Fq2.mul x (Fq2.sqr x)) b_twist in
    (match Fq2.sqrt rhs with
     | None -> invalid_arg "G2.of_bytes_compressed_exn: x not on curve"
     | Some y ->
       let want_odd = tag = '\003' in
       let y = if fq2_parity y = want_odd then y else Fq2.neg y in
       let p = of_affine (x, y) in
       if not (in_subgroup p) then
         invalid_arg "G2.of_bytes_compressed_exn: outside the r-order subgroup";
       p)
  | _ -> invalid_arg "G2.of_bytes_compressed_exn: bad tag"
