(** Fixed-base scalar multiplication with a precomputed window table.
    Used by the Groth16 setup, which performs one scalar multiplication
    per wire per CRS query; an 8-bit window costs ~32 group additions per
    scalar instead of ~380 double-and-adds. *)

module Make (G : sig
  type t

  val zero : t
  val add : t -> t -> t
  val double : t -> t
end) : sig
  type table

  (** Precompute the window table for a base point. *)
  val create : ?window:int -> G.t -> table

  val mul_bigint : table -> Zkvc_num.Bigint.t -> G.t
  val mul : table -> Zkvc_field.Fr.t -> G.t
end
