(** Quadratic extension Fq2 = Fq[u]/(u² + 1). [-1] is a non-residue because
    [q ≡ 3 (mod 4)]. Coordinate field of the BN254 G2 twist. *)

module Fq = Zkvc_field.Fq

type t = { c0 : Fq.t; c1 : Fq.t }

val zero : t
val one : t
val make : Fq.t -> Fq.t -> t
val of_fq : Fq.t -> t
val of_int : int -> t
val of_strings : string -> string -> t

(** The sextic-twist non-residue ξ = 9 + u. *)
val xi : t

val equal : t -> t -> bool
val is_zero : t -> bool
val is_one : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val double : t -> t
val mul : t -> t -> t
val sqr : t -> t
val mul_by_fq : Fq.t -> t -> t
val inv : t -> t
val div : t -> t -> t
val pow : t -> Zkvc_num.Bigint.t -> t

(** Conjugate [c0 - c1 u]. *)
val conj : t -> t

(** Square root when it exists (q ≡ 3 mod 4 variant of the complex method);
    used to derive G2 points without relying on hard-coded constants. *)
val sqrt : t -> t option

val random : Random.State.t -> t
val size_in_bytes : int
val to_bytes : t -> Bytes.t

(** Raises [Invalid_argument] on wrong length or non-canonical limbs. *)
val of_bytes_exn : Bytes.t -> t
val pp : Format.formatter -> t -> unit
