(** Cubic extension Fq6 = Fq2[v]/(v³ − ξ) with ξ = 9 + u. *)

type t = { c0 : Fq2.t; c1 : Fq2.t; c2 : Fq2.t }

let make c0 c1 c2 = { c0; c1; c2 }
let zero = make Fq2.zero Fq2.zero Fq2.zero
let one = make Fq2.one Fq2.zero Fq2.zero
let of_fq2 c = make c Fq2.zero Fq2.zero

let equal a b = Fq2.equal a.c0 b.c0 && Fq2.equal a.c1 b.c1 && Fq2.equal a.c2 b.c2
let is_zero a = equal a zero
let is_one a = equal a one

let add a b = make (Fq2.add a.c0 b.c0) (Fq2.add a.c1 b.c1) (Fq2.add a.c2 b.c2)
let sub a b = make (Fq2.sub a.c0 b.c0) (Fq2.sub a.c1 b.c1) (Fq2.sub a.c2 b.c2)
let neg a = make (Fq2.neg a.c0) (Fq2.neg a.c1) (Fq2.neg a.c2)
let double a = add a a

let mul_xi = Fq2.mul Fq2.xi

let mul a b =
  let m00 = Fq2.mul a.c0 b.c0 in
  let m11 = Fq2.mul a.c1 b.c1 in
  let m22 = Fq2.mul a.c2 b.c2 in
  let c0 = Fq2.add m00 (mul_xi (Fq2.add (Fq2.mul a.c1 b.c2) (Fq2.mul a.c2 b.c1))) in
  let c1 = Fq2.add (Fq2.add (Fq2.mul a.c0 b.c1) (Fq2.mul a.c1 b.c0)) (mul_xi m22) in
  let c2 = Fq2.add (Fq2.add (Fq2.mul a.c0 b.c2) (Fq2.mul a.c2 b.c0)) m11 in
  make c0 c1 c2

let sqr a = mul a a

let mul_by_fq2 k a = make (Fq2.mul k a.c0) (Fq2.mul k a.c1) (Fq2.mul k a.c2)

(* Multiplication by v: (c0, c1, c2) * v = (ξ c2, c0, c1). *)
let mul_by_v a = make (mul_xi a.c2) a.c0 a.c1

(* Inverse (Devegili et al., "Multiplication and Squaring on Pairing-
   Friendly Fields"). *)
let inv a =
  let t0 = Fq2.sub (Fq2.sqr a.c0) (mul_xi (Fq2.mul a.c1 a.c2)) in
  let t1 = Fq2.sub (mul_xi (Fq2.sqr a.c2)) (Fq2.mul a.c0 a.c1) in
  let t2 = Fq2.sub (Fq2.sqr a.c1) (Fq2.mul a.c0 a.c2) in
  let denom =
    Fq2.add (Fq2.mul a.c0 t0) (mul_xi (Fq2.add (Fq2.mul a.c2 t1) (Fq2.mul a.c1 t2)))
  in
  let dinv = Fq2.inv denom in
  make (Fq2.mul t0 dinv) (Fq2.mul t1 dinv) (Fq2.mul t2 dinv)

let random st = make (Fq2.random st) (Fq2.random st) (Fq2.random st)

let pp fmt a = Format.fprintf fmt "(%a, %a, %a)" Fq2.pp a.c0 Fq2.pp a.c1 Fq2.pp a.c2
