module Fq = Zkvc_field.Fq
module Bigint = Zkvc_num.Bigint

let gt_one = Fq12.one

(* Tate Miller loop, affine coordinates. T runs through multiples of the G1
   point; each line is evaluated at the untwisted G2 point
   (x_Q w², y_Q w³). We use the negated line λx − y + c, which differs from
   the textbook one by a factor −1 ∈ Fq that the final exponentiation
   kills. *)
let miller_loop p q =
  if G1.is_zero p || G2.is_zero q then Fq12.one
  else begin
    let px, py =
      match G1.to_affine p with Some a -> a | None -> assert false
    in
    let qx, qy =
      match G2.to_affine q with Some a -> a | None -> assert false
    in
    let f = ref Fq12.one in
    let tx = ref px and ty = ref py and t_inf = ref false in
    let line lambda =
      let c = Fq.sub !ty (Fq.mul lambda !tx) in
      f := Fq12.mul !f (Fq12.line_value ~lambda ~c ~xq:qx ~yq:qy)
    in
    let tangent_step () =
      (* λ = 3 tx² / 2 ty; ty ≠ 0 because T has odd prime order *)
      let lambda =
        let n = Fq.mul (Fq.of_int 3) (Fq.sqr !tx) in
        Fq.div n (Fq.double !ty)
      in
      line lambda;
      let x3 = Fq.sub (Fq.sqr lambda) (Fq.double !tx) in
      let y3 = Fq.sub (Fq.mul lambda (Fq.sub !tx x3)) !ty in
      tx := x3;
      ty := y3
    in
    let addition_step () =
      if !t_inf then begin
        tx := px; ty := py; t_inf := false
      end
      else if Fq.equal !tx px then begin
        if Fq.equal !ty py then tangent_step ()
        else t_inf := true (* vertical line: factor eliminated *)
      end
      else begin
        let lambda = Fq.div (Fq.sub py !ty) (Fq.sub px !tx) in
        line lambda;
        let x3 = Fq.sub (Fq.sub (Fq.sqr lambda) !tx) px in
        let y3 = Fq.sub (Fq.mul lambda (Fq.sub !tx x3)) !ty in
        tx := x3;
        ty := y3
      end
    in
    let r = Bn_params.r in
    for i = Bigint.num_bits r - 2 downto 0 do
      f := Fq12.sqr !f;
      if not !t_inf then tangent_step ();
      if Bigint.bit r i then addition_step ()
    done;
    (* after the loop T = r·P = O, consumed by the final vertical line *)
    assert !t_inf;
    !f
  end

let final_exp_exponent =
  lazy
    (let q12 = Bigint.pow Bn_params.q 12 in
     let num = Bigint.sub q12 Bigint.one in
     let e, rem = Bigint.divmod num Bn_params.r in
     assert (Bigint.is_zero rem);
     e)

let final_exponentiation f = Fq12.pow f (Lazy.force final_exp_exponent)

let pairing p q = final_exponentiation (miller_loop p q)

let multi_pairing pairs =
  let m =
    List.fold_left
      (fun acc (p, q) -> Fq12.mul acc (miller_loop p q))
      Fq12.one pairs
  in
  final_exponentiation m
