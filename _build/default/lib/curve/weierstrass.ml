(** Short Weierstrass curves [y² = x³ + b] in Jacobian coordinates,
    functorised over the coordinate field so that the same (heavily tested)
    formulas drive both G1 (over Fq) and the G2 twist (over Fq2). *)

module Bigint = Zkvc_num.Bigint

module type Coord = sig
  type t

  val zero : t
  val one : t
  val of_int : int -> t
  val equal : t -> t -> bool
  val is_zero : t -> bool
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val double : t -> t
  val mul : t -> t -> t
  val sqr : t -> t
  val inv : t -> t
  val size_in_bytes : int
  val to_bytes : t -> Bytes.t
  val of_bytes_exn : Bytes.t -> t
  val pp : Format.formatter -> t -> unit
end

module Make (F : Coord) (P : sig
  val b : F.t
end) =
struct
  type t = { x : F.t; y : F.t; z : F.t } (* z = 0 encodes the point at infinity *)

  let zero = { x = F.one; y = F.one; z = F.zero }
  let is_zero p = F.is_zero p.z

  let of_affine (x, y) = { x; y; z = F.one }

  let to_affine p =
    if is_zero p then None
    else begin
      let zinv = F.inv p.z in
      let zinv2 = F.sqr zinv in
      Some (F.mul p.x zinv2, F.mul p.y (F.mul zinv2 zinv))
    end

  let is_on_curve_affine (x, y) =
    F.equal (F.sqr y) (F.add (F.mul x (F.sqr x)) P.b)

  let is_on_curve p =
    if is_zero p then true
    else match to_affine p with
      | None -> true
      | Some a -> is_on_curve_affine a

  let neg p = if is_zero p then p else { p with y = F.neg p.y }

  (* dbl-2009-l (a = 0): A = X², B = Y², C = B², D = 2((X+B)² − A − C),
     E = 3A, F = E², X3 = F − 2D, Y3 = E(D − X3) − 8C, Z3 = 2YZ. *)
  let double p =
    if is_zero p then p
    else begin
      let a = F.sqr p.x in
      let b = F.sqr p.y in
      let c = F.sqr b in
      let d = F.double (F.sub (F.sub (F.sqr (F.add p.x b)) a) c) in
      let e = F.add (F.double a) a in
      let f = F.sqr e in
      let x3 = F.sub f (F.double d) in
      let y3 = F.sub (F.mul e (F.sub d x3)) (F.double (F.double (F.double c))) in
      let z3 = F.double (F.mul p.y p.z) in
      { x = x3; y = y3; z = z3 }
    end

  (* add-2007-bl with doubling/infinity edge cases resolved explicitly. *)
  let add p q =
    if is_zero p then q
    else if is_zero q then p
    else begin
      let z1z1 = F.sqr p.z in
      let z2z2 = F.sqr q.z in
      let u1 = F.mul p.x z2z2 in
      let u2 = F.mul q.x z1z1 in
      let s1 = F.mul p.y (F.mul q.z z2z2) in
      let s2 = F.mul q.y (F.mul p.z z1z1) in
      if F.equal u1 u2 then begin
        if F.equal s1 s2 then double p else zero
      end
      else begin
        let h = F.sub u2 u1 in
        let i = F.sqr (F.double h) in
        let j = F.mul h i in
        let rr = F.double (F.sub s2 s1) in
        let v = F.mul u1 i in
        let x3 = F.sub (F.sub (F.sqr rr) j) (F.double v) in
        let y3 = F.sub (F.mul rr (F.sub v x3)) (F.double (F.mul s1 j)) in
        let z3 = F.mul (F.sub (F.sub (F.sqr (F.add p.z q.z)) z1z1) z2z2) h in
        { x = x3; y = y3; z = z3 }
      end
    end

  let sub_point p q = add p (neg q)

  let equal p q =
    match is_zero p, is_zero q with
    | true, true -> true
    | true, false | false, true -> false
    | false, false ->
      (* X1 Z2² = X2 Z1² and Y1 Z2³ = Y2 Z1³ *)
      let z1z1 = F.sqr p.z and z2z2 = F.sqr q.z in
      F.equal (F.mul p.x z2z2) (F.mul q.x z1z1)
      && F.equal (F.mul p.y (F.mul q.z z2z2)) (F.mul q.y (F.mul p.z z1z1))

  let mul p e =
    if Bigint.sign e < 0 then invalid_arg "Weierstrass.mul: negative scalar";
    let nb = Bigint.num_bits e in
    let acc = ref zero in
    for i = nb - 1 downto 0 do
      acc := double !acc;
      if Bigint.bit e i then acc := add !acc p
    done;
    !acc

  (** Fixed-width serialisation: a tag byte (0 = infinity, 1 = affine)
      followed by the two padded coordinates. *)
  let size_in_bytes = 1 + (2 * F.size_in_bytes)

  let to_bytes p =
    match to_affine p with
    | None -> Bytes.make size_in_bytes '\000'
    | Some (x, y) ->
      Bytes.cat (Bytes.make 1 '\001') (Bytes.cat (F.to_bytes x) (F.to_bytes y))

  (** Parses {!to_bytes} output; checks length, tag and the curve
      equation. Raises [Invalid_argument] otherwise. *)
  let of_bytes_exn b =
    if Bytes.length b <> size_in_bytes then invalid_arg "Weierstrass.of_bytes_exn: length";
    match Bytes.get b 0 with
    | '\000' -> zero
    | '\001' ->
      let fw = F.size_in_bytes in
      let x = F.of_bytes_exn (Bytes.sub b 1 fw) in
      let y = F.of_bytes_exn (Bytes.sub b (1 + fw) fw) in
      if not (is_on_curve_affine (x, y)) then
        invalid_arg "Weierstrass.of_bytes_exn: point not on curve";
      of_affine (x, y)
    | _ -> invalid_arg "Weierstrass.of_bytes_exn: bad tag"

  let pp fmt p =
    match to_affine p with
    | None -> Format.pp_print_string fmt "O"
    | Some (x, y) -> Format.fprintf fmt "(%a, %a)" F.pp x F.pp y
end
