(** BN254 curve-family parameters, re-derived from the BN parameter [x] at
    module initialisation and cross-checked against the field moduli. *)

module Bigint = Zkvc_num.Bigint

(** BN parameter. *)
val x : Bigint.t

(** Trace of Frobenius, [t = 6x² + 1]. *)
val t : Bigint.t

(** Base-field modulus, [36x⁴ + 36x³ + 24x² + 6x + 1]. *)
val q : Bigint.t

(** Group order / scalar modulus, [q − 6x²]. *)
val r : Bigint.t

(** Cofactor of the order-[r] subgroup of the sextic twist:
    [#E'(Fq2) = r · (q − 1 + t)]. *)
val g2_cofactor : Bigint.t
