(** BN254 G1: [y² = x³ + 3] over Fq, prime order [r], generator (1, 2). *)

module Fq = Zkvc_field.Fq
module Fr = Zkvc_field.Fr
module Bigint = Zkvc_num.Bigint

include Weierstrass.Make (Fq) (struct let b = Fq.of_int 3 end)

let generator = of_affine (Fq.one, Fq.of_int 2)

let () = assert (is_on_curve generator)

(** Scalar multiplication by a field scalar (the common case in SNARKs). *)
let mul_fr p s = mul p (Fr.to_bigint s)

let random st = mul_fr generator (Fr.random st)

(** Order check: cofactor is 1, so membership = on-curve. *)
let in_subgroup p = is_on_curve p

module Fq_sqrt = Zkvc_field.Sqrt.Make (Fq)

(* SEC1-style compression: tag 0 = infinity, 2/3 = parity of y. *)
let size_in_bytes_compressed = 1 + Fq.size_in_bytes

let to_bytes_compressed p =
  match to_affine p with
  | None -> Bytes.make size_in_bytes_compressed '\000'
  | Some (x, y) ->
    let parity = if Bigint.bit (Fq.to_bigint y) 0 then '\003' else '\002' in
    Bytes.cat (Bytes.make 1 parity) (Fq.to_bytes x)

let of_bytes_compressed_exn b =
  if Bytes.length b <> size_in_bytes_compressed then
    invalid_arg "G1.of_bytes_compressed_exn: length";
  match Bytes.get b 0 with
  | '\000' -> zero
  | ('\002' | '\003') as tag ->
    let x = Fq.of_bytes_exn (Bytes.sub b 1 Fq.size_in_bytes) in
    let rhs = Fq.add (Fq.mul x (Fq.sqr x)) (Fq.of_int 3) in
    (match Fq_sqrt.sqrt rhs with
     | None -> invalid_arg "G1.of_bytes_compressed_exn: x not on curve"
     | Some y ->
       let want_odd = tag = '\003' in
       let y = if Bigint.bit (Fq.to_bigint y) 0 = want_odd then y else Fq.neg y in
       of_affine (x, y))
  | _ -> invalid_arg "G1.of_bytes_compressed_exn: bad tag"
