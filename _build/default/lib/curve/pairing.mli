(** Reduced Tate pairing e : G1 × G2 → GT ⊂ Fq12* on BN254.

    The Miller loop runs over the bits of the group order [r] with affine
    line functions; vertical lines are omitted (denominator elimination is
    sound here because every dropped factor lies in Fq6, which the
    [(q¹²−1)/r] final exponentiation annihilates). The final exponentiation
    is a plain big-integer square-and-multiply — slower than the optimal-ate
    hard-part decomposition but correct by construction; see DESIGN.md
    (substitution 1). *)

val miller_loop : G1.t -> G2.t -> Fq12.t

val final_exponentiation : Fq12.t -> Fq12.t

(** [pairing p q = final_exponentiation (miller_loop p q)]. *)
val pairing : G1.t -> G2.t -> Fq12.t

(** Product of pairings sharing one final exponentiation — the Groth16
    verification pattern. *)
val multi_pairing : (G1.t * G2.t) list -> Fq12.t

(** Identity of GT. *)
val gt_one : Fq12.t
