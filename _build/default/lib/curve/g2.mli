(** BN254 G2: order-[r] subgroup of the D-type sextic twist
    [y² = x³ + 3/ξ] over Fq2 (ξ = 9 + u).

    The generator is derived at module initialisation (point search +
    cofactor clearing + order check) rather than transcribed, removing any
    dependence on hard-coded constants. *)

module Fr = Zkvc_field.Fr

type t

val zero : t
val generator : t
val b_twist : Fq2.t
val is_zero : t -> bool
val of_affine : Fq2.t * Fq2.t -> t
val to_affine : t -> (Fq2.t * Fq2.t) option
val is_on_curve_affine : Fq2.t * Fq2.t -> bool
val is_on_curve : t -> bool
val neg : t -> t
val double : t -> t
val add : t -> t -> t
val sub_point : t -> t -> t
val equal : t -> t -> bool
val mul : t -> Zkvc_num.Bigint.t -> t
val mul_fr : t -> Fr.t -> t
val random : Random.State.t -> t

(** On the twist curve AND killed by [r]. *)
val in_subgroup : t -> bool

val size_in_bytes : int
val to_bytes : t -> Bytes.t

(** Parses {!to_bytes} output; validates the curve equation. *)
val of_bytes_exn : Bytes.t -> t

(** 65-byte compressed encoding (x plus a y-parity tag). *)
val size_in_bytes_compressed : int

val to_bytes_compressed : t -> Bytes.t

(** Decompresses and checks subgroup membership; raises
    [Invalid_argument] on failure. *)
val of_bytes_compressed_exn : Bytes.t -> t

val pp : Format.formatter -> t -> unit
