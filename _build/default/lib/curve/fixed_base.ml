(** Fixed-base scalar multiplication with a precomputed window table.
    The Groth16 setup performs one scalar multiplication per wire per
    query; with an 8-bit window each costs ~32 group additions instead of
    ~380 double-and-adds. *)

module Bigint = Zkvc_num.Bigint
module Fr = Zkvc_field.Fr

module Make (G : sig
  type t

  val zero : t
  val add : t -> t -> t
  val double : t -> t
end) =
struct
  type table =
    { window : int;
      rows : G.t array array (* rows.(w).(d-1) = (d << (window*w)) · base *) }

  let scalar_bits = 254

  let create ?(window = 8) base =
    let nwin = (scalar_bits + window - 1) / window in
    let base_w = ref base in
    let rows =
      Array.init nwin (fun _ ->
          let row = Array.make ((1 lsl window) - 1) G.zero in
          row.(0) <- !base_w;
          for d = 1 to Array.length row - 1 do
            row.(d) <- G.add row.(d - 1) !base_w
          done;
          (* advance base_w by 2^window *)
          for _ = 1 to window do
            base_w := G.double !base_w
          done;
          row)
    in
    { window; rows }

  let mul_bigint t s =
    if Bigint.sign s < 0 then invalid_arg "Fixed_base.mul: negative scalar";
    let c = t.window in
    let acc = ref G.zero in
    Array.iteri
      (fun w row ->
        let lo = w * c in
        let hi = Stdlib.min (lo + c) scalar_bits in
        let d = ref 0 in
        for i = hi - 1 downto lo do
          d := (!d lsl 1) lor (if Bigint.bit s i then 1 else 0)
        done;
        if !d > 0 then acc := G.add !acc row.(!d - 1))
      t.rows;
    !acc

  let mul t s = mul_bigint t (Fr.to_bigint s)
end
