(** BN254 (alt_bn128) curve parameters. The curve family is parameterised by
    [x]; at module initialisation we re-derive [q], [r] and the trace [t]
    from [x] and check them against the moduli baked into {!Zkvc_field},
    which guards against any transcription error in the constants. *)

module Bigint = Zkvc_num.Bigint

(** BN parameter. *)
let x = Bigint.of_string "4965661367192848881"

(** Trace of Frobenius: [t = 6x^2 + 1]. *)
let t =
  Bigint.add (Bigint.mul (Bigint.of_int 6) (Bigint.mul x x)) Bigint.one

(** [q = 36x^4 + 36x^3 + 24x^2 + 6x + 1] — base field modulus. *)
let q =
  let x2 = Bigint.mul x x in
  let x3 = Bigint.mul x2 x in
  let x4 = Bigint.mul x3 x in
  let term c v = Bigint.mul (Bigint.of_int c) v in
  List.fold_left Bigint.add Bigint.one
    [ term 36 x4; term 36 x3; term 24 x2; term 6 x ]

(** [r = 36x^4 + 36x^3 + 18x^2 + 6x + 1] — group order / scalar modulus. *)
let r =
  let x2 = Bigint.mul x x in
  Bigint.sub q (Bigint.mul (Bigint.of_int 6) x2)

let () =
  (* cross-check the BN polynomial identities against the field moduli *)
  assert (Bigint.equal q Zkvc_field.Fq.modulus);
  assert (Bigint.equal r Zkvc_field.Fr.modulus);
  (* Hasse: #E(Fq) = q + 1 - t must equal r *)
  assert (Bigint.equal (Bigint.add (Bigint.sub q t) Bigint.one) r)

(** Order of the correct sextic twist E'(Fq2) is [r * g2_cofactor] with
    [g2_cofactor = q - 1 + t]. *)
let g2_cofactor = Bigint.add (Bigint.sub q Bigint.one) t
