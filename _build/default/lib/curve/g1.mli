(** BN254 G1: [y² = x³ + 3] over Fq, prime order [r], generator (1, 2).
    Jacobian coordinates; all group operations come from
    {!Weierstrass.Make}. *)

module Fq = Zkvc_field.Fq
module Fr = Zkvc_field.Fr

type t

val zero : t
val generator : t
val is_zero : t -> bool
val of_affine : Fq.t * Fq.t -> t
val to_affine : t -> (Fq.t * Fq.t) option
val is_on_curve_affine : Fq.t * Fq.t -> bool
val is_on_curve : t -> bool
val neg : t -> t
val double : t -> t
val add : t -> t -> t
val sub_point : t -> t -> t
val equal : t -> t -> bool

(** Scalar multiplication by a non-negative big integer. *)
val mul : t -> Zkvc_num.Bigint.t -> t

(** Scalar multiplication by a field scalar (the SNARK-common case). *)
val mul_fr : t -> Fr.t -> t

val random : Random.State.t -> t

(** Cofactor is 1, so subgroup membership = on-curve. *)
val in_subgroup : t -> bool

val size_in_bytes : int
val to_bytes : t -> Bytes.t

(** Parses {!to_bytes} output; validates the curve equation. *)
val of_bytes_exn : Bytes.t -> t

(** SEC1-style 33-byte compressed encoding (x plus a y-parity tag). *)
val size_in_bytes_compressed : int

val to_bytes_compressed : t -> Bytes.t

(** Decompresses by solving the curve equation; raises
    [Invalid_argument] when x is not on the curve. *)
val of_bytes_compressed_exn : Bytes.t -> t

val pp : Format.formatter -> t -> unit
