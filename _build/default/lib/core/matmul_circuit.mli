(** The four matmul-to-R1CS encodings of the zkVC paper's ablation
    (Table II): vanilla circuits, PSQ, CRPC, and CRPC+PSQ.

    - {b Vanilla}: one constraint per scalar product plus one wide
      addition per output — [a·b·(n+1)] constraints.
    - {b PSQ} (Prefix-Sum Query): accumulation carried on the C-side
      linear combination, [L_k·R_k = s_k − s_{k−1}], removing product
      wires and the wide additions.
    - {b CRPC} (Constraint-Reduced Polynomial Circuit): the whole product
      as a polynomial identity in a random challenge [Z],

        [Σ_{i,j} Z^{ib+j} y_ij = Σ_k (Σ_i Z^{ib} x_ik)(Σ_j Z^j w_kj)],

      which is an exact polynomial identity iff [Y = X·W]; instantiating
      [Z] at a post-commitment Fiat–Shamir challenge gives soundness error
      [(a·b − 1)/|F|] by Schwartz–Zippel. Only [n] multiplication
      constraints remain.
    - {b CRPC+PSQ}: CRPC terms accumulated through prefix sums. *)

type strategy = Vanilla | Vanilla_psq | Crpc | Crpc_psq

val all_strategies : strategy list
val strategy_name : strategy -> string
val uses_challenge : strategy -> bool

(** Closed-form constraint counts; validated against compiled circuits by
    the test suite. *)
val expected_constraints : strategy -> Matmul_spec.dims -> int

module Make (F : Zkvc_field.Field_intf.S) : sig
  module B : module type of Zkvc_r1cs.Builder.Make (F)

  type wires =
    { x : int array array;
      w : int array array;
      y : int array array }

  (** Fiat–Shamir challenge for CRPC, bound to the full contents of X, W
      and Y (commit-then-prove flow). *)
  val derive_challenge :
    x:F.t array array -> w:F.t array array -> y:F.t array array -> F.t

  (** Add the constraints of the chosen strategy binding pre-allocated
      wire matrices [y = x·w] — the composition entry point for chaining
      layers. [challenge] is required by the CRPC variants
      ([Invalid_argument] otherwise). *)
  val constrain :
    B.t ->
    strategy ->
    ?challenge:F.t ->
    x:int array array ->
    w:int array array ->
    y:int array array ->
    Matmul_spec.dims ->
    unit

  (** Allocate wires for X, W and Y = X·W and add the constraints of the
      chosen strategy. [x]/[w] default to private witness, [y] to public
      outputs. Returns the wires and the computed Y. *)
  val build :
    B.t ->
    strategy ->
    ?challenge:F.t ->
    ?x_public:bool ->
    ?w_public:bool ->
    ?y_public:bool ->
    x:F.t array array ->
    w:F.t array array ->
    Matmul_spec.dims ->
    wires * F.t array array
end
