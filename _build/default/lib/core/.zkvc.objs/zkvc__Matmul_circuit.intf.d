lib/core/matmul_circuit.mli: Matmul_spec Zkvc_field Zkvc_r1cs
