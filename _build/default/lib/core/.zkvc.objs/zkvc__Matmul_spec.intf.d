lib/core/matmul_spec.mli: Format Random Zkvc_field
