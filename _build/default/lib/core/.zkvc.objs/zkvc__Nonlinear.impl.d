lib/core/nonlinear.ml: Array List Stdlib Zkvc_field Zkvc_num Zkvc_r1cs
