lib/core/api.mli: Format Matmul_circuit Matmul_spec Random Zkvc_field Zkvc_groth16 Zkvc_r1cs Zkvc_spartan
