lib/core/matmul_circuit.ml: Array List Matmul_spec Zkvc_field Zkvc_num Zkvc_r1cs Zkvc_transcript
