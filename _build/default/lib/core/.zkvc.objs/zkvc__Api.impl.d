lib/core/api.ml: Array Format Matmul_circuit Matmul_spec Random Sys Zkvc_field Zkvc_groth16 Zkvc_r1cs Zkvc_spartan
