lib/core/nonlinear.mli: Zkvc_field Zkvc_r1cs
