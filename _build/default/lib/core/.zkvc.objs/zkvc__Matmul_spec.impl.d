lib/core/matmul_spec.ml: Array Format Random Zkvc_field
