(** zkVC's arithmetic approximations of the Transformer's non-linear
    functions (paper Section III-C) as R1CS gadgets over fixed-point
    values, plus a bit-exact integer reference model shared with the
    quantized neural-network forward pass. *)

type config =
  { fractional_bits : int; (** scale S = 2^fractional_bits *)
    value_bits : int; (** quantized magnitudes live below 2^value_bits *)
    exp_squarings : int; (** n in (1 − d/2ⁿ)^(2ⁿ) *)
    clip_log2 : int (** clip e^{−d} to 0 when d ≥ 2^clip_log2 (quantized) *) }

(** 8 fractional bits, 16-bit values, 5 squarings, clip beyond d/S ≥ 8. *)
val default_config : config

(** [2^fractional_bits]. *)
val scale : config -> int

(** Raises [Invalid_argument] for inconsistent configurations. *)
val validate : config -> unit

(** Bit-exact integer semantics of the circuits below. *)
module Reference : sig
  (** [exp_neg cfg d ≈ S·e^{−d/S}] for a non-negative quantized [d]. *)
  val exp_neg : config -> int -> int

  (** Quantized softmax of a logit vector (scale-S probabilities). *)
  val softmax : config -> int array -> int array

  (** GELU(x) ≈ x²/8 + x/4 + 1/2 in fixed point, signed input. *)
  val gelu : config -> int -> int
end

module Make (F : Zkvc_field.Field_intf.S) : sig
  module L : module type of Zkvc_r1cs.Lc.Make (F)
  module B : module type of Zkvc_r1cs.Builder.Make (F)

  (** Constrained wire holding [Reference.exp_neg cfg d] for a
      non-negative quantized difference below [2^value_bits]. Three bit
      decompositions + n squarings, the paper's recipe. *)
  val exp_neg : B.t -> config -> L.t -> L.var

  (** SoftMax over non-negative quantized logit wires: max via
      comparisons + membership product, clipped exponentials, one verified
      division per element. Matches [Reference.softmax] bit for bit. *)
  val softmax : B.t -> config -> L.var list -> L.var list

  (** GELU polynomial approximation on a signed quantized wire. *)
  val gelu : B.t -> config -> L.var -> L.var
end
