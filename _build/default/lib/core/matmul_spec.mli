(** Plain matrix-multiplication instances [Y = X·W] with [X : a×n],
    [W : n×b] — the statements zkVC proves. *)

type dims = { a : int; n : int; b : int }

(** Raises [Invalid_argument] on non-positive dimensions. *)
val dims : a:int -> n:int -> b:int -> dims

val pp_dims : Format.formatter -> dims -> unit

(** Paper Fig. 3 / Fig. 6 sizes: ViT embedding layers
    [#tokens, dim1] × [dim1, dim2] with 49 tokens and dim1 = dim2/2. *)
val vit_embedding : dim2:int -> dims

module Make (F : Zkvc_field.Field_intf.S) : sig
  val random_matrix : Random.State.t -> rows:int -> cols:int -> bound:int -> F.t array array

  (** Reference product. Raises [Invalid_argument] on dimension mismatch. *)
  val multiply : F.t array array -> F.t array array -> F.t array array

  val check_dims : dims -> F.t array array -> F.t array array -> bool
end
