(** Plain matrix-multiplication instances [Y = X·W] with
    [X : a×n], [W : n×b], used as ground truth by circuits and tests. *)

type dims = { a : int; n : int; b : int }

let dims ~a ~n ~b =
  if a <= 0 || n <= 0 || b <= 0 then invalid_arg "Matmul_spec.dims: non-positive";
  { a; n; b }

let pp_dims fmt d = Format.fprintf fmt "[%d,%d]x[%d,%d]" d.a d.n d.n d.b

(** Paper Fig. 3 / Fig. 6 sizes: ViT embedding layers
    [#tokens, dim1] × [dim1, dim2] with 49 tokens. *)
let vit_embedding ~dim2 = { a = 49; n = dim2 / 2; b = dim2 }

module Make (F : Zkvc_field.Field_intf.S) = struct
  let random_matrix st ~rows ~cols ~bound =
    Array.init rows (fun _ ->
        Array.init cols (fun _ -> F.of_int (Random.State.int st bound)))

  let multiply x w =
    let a = Array.length x and n = Array.length w in
    if n = 0 || Array.length x.(0) <> n then invalid_arg "Matmul_spec.multiply: dims";
    let b = Array.length w.(0) in
    Array.init a (fun i ->
        Array.init b (fun j ->
            let acc = ref F.zero in
            for k = 0 to n - 1 do
              acc := F.add !acc (F.mul x.(i).(k) w.(k).(j))
            done;
            !acc))

  let check_dims d x w =
    Array.length x = d.a
    && Array.for_all (fun row -> Array.length row = d.n) x
    && Array.length w = d.n
    && Array.for_all (fun row -> Array.length row = d.b) w
end
