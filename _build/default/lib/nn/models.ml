(** The model zoo of the paper's evaluation (Section IV):

    - CIFAR-10 ViT: 7 layers, 4 heads, hidden 256, patch 4 (32×32 → 64 tokens)
    - Tiny-ImageNet ViT: 9 layers, 12 heads, hidden 192, patch 4 (64×64 → 256 tokens)
    - ImageNet hierarchical (Swin/MetaFormer-style): 12 layers in 4 stages,
      dims 64/128/320/512, patch 4 (224×224 → 3136 tokens, pooled ×4 per stage)
    - BERT: 4 layers, 4 heads, hidden 256, 128-token sequences (GLUE)

    Each architecture can be instantiated with any token-mixer variant from
    Tables III/IV: SoftApprox (all softmax attention), SoftFree-S (all
    scaling attention), SoftFree-P (all pooling), SoftFree-L (all linear
    mixing), or the zkVC hybrid chosen by the planner. *)

type variant = Soft_approx | Soft_free_s | Soft_free_p | Soft_free_l | Zkvc_hybrid

let variant_name = function
  | Soft_approx -> "SoftApprox."
  | Soft_free_s -> "SoftFree-S"
  | Soft_free_p -> "SoftFree-P"
  | Soft_free_l -> "SoftFree-L"
  | Zkvc_hybrid -> "zkVC"

type arch =
  { arch_name : string;
    domain : [ `Vision | `Nlp ];
    tokens : int;
    patch_dim : int;
    heads : int;
    mlp_ratio : int;
    num_classes : int;
    (* (blocks, dim, pool-factor-entering-this-stage) per stage *)
    stage_spec : (int * int * int) list }

let vit_cifar10 =
  { arch_name = "ViT-CIFAR10";
    domain = `Vision;
    tokens = 64; (* (32/4)² *)
    patch_dim = 4 * 4 * 3;
    heads = 4;
    mlp_ratio = 2;
    num_classes = 10;
    stage_spec = [ (7, 256, 1) ] }

let vit_tiny_imagenet =
  { arch_name = "ViT-TinyImageNet";
    domain = `Vision;
    tokens = 256; (* (64/4)² *)
    patch_dim = 4 * 4 * 3;
    heads = 12;
    mlp_ratio = 2;
    num_classes = 200;
    stage_spec = [ (9, 192, 1) ] }

let vit_imagenet =
  { arch_name = "ViT-ImageNet-hier";
    domain = `Vision;
    tokens = 3136; (* (224/4)² *)
    patch_dim = 4 * 4 * 3;
    heads = 4;
    mlp_ratio = 2;
    num_classes = 1000;
    stage_spec = [ (3, 64, 1); (3, 128, 4); (3, 320, 4); (3, 512, 4) ] }

let bert_glue =
  { arch_name = "BERT-4L";
    domain = `Nlp;
    tokens = 128;
    patch_dim = 256 (* embedding lookup output, treated as input features *);
    heads = 4;
    mlp_ratio = 4;
    num_classes = 3 (* MNLI-style *);
    stage_spec = [ (4, 256, 1) ] }

let all_archs = [ vit_cifar10; vit_tiny_imagenet; vit_imagenet; bert_glue ]

(** The planner's per-block mixer choice. The hybrid keeps softmax-free
    mixers on the early blocks (long token sequences) and reintroduces
    softmax attention in the later blocks, as described in the paper's
    Results section; for NLP it blends linear mixing with scaling
    attention. *)
let mixer_for arch variant ~block_index ~total_blocks ~tokens =
  match variant with
  | Soft_approx -> Token_mixer.Softmax_attn
  | Soft_free_s -> Token_mixer.Scaling_attn
  | Soft_free_p -> Token_mixer.Pooling
  | Soft_free_l -> Token_mixer.Linear_mix
  | Zkvc_hybrid ->
    (* softmax-free mixers early; softmax attention reintroduced only on
       the last third of the blocks and only where the token sequence is
       short (the paper's "later transformer layers with shorter token
       sequences") *)
    let late = block_index * 3 >= 2 * total_blocks in
    (match arch.domain with
     | `Vision ->
       if late && tokens <= 64 then Token_mixer.Softmax_attn
       else if late then Token_mixer.Scaling_attn
       else Token_mixer.Pooling
     | `Nlp -> if late then Token_mixer.Scaling_attn else Token_mixer.Linear_mix)

(** Instantiate an architecture with seeded synthetic weights. *)
let build st arch variant =
  let total_blocks = List.fold_left (fun acc (nb, _, _) -> acc + nb) 0 arch.stage_spec in
  let first_dim = match arch.stage_spec with (_, d, _) :: _ -> d | [] -> assert false in
  let block_counter = ref 0 in
  let prev_dim = ref first_dim and cur_tokens = ref arch.tokens in
  let stages =
    List.mapi
      (fun stage_idx (nblocks, dim, pool) ->
        let downsample =
          if stage_idx = 0 then None
          else begin
            cur_tokens := !cur_tokens / pool;
            Some
              ( pool,
                Tensor.random_gaussian st !prev_dim dim
                  ~std:(1. /. sqrt (float_of_int !prev_dim)) )
          end
        in
        let tokens = !cur_tokens in
        let blocks =
          List.init nblocks (fun _ ->
              let kind =
                mixer_for arch variant ~block_index:!block_counter ~total_blocks ~tokens
              in
              incr block_counter;
              Transformer.make_block st ~kind ~tokens ~dim ~heads:arch.heads
                ~mlp_ratio:arch.mlp_ratio)
        in
        prev_dim := dim;
        { Transformer.blocks; tokens; dim; downsample })
      arch.stage_spec
  in
  { Transformer.name = Printf.sprintf "%s/%s" arch.arch_name (variant_name variant);
    patch_dim = arch.patch_dim;
    embed =
      Tensor.random_gaussian st arch.patch_dim first_dim
        ~std:(1. /. sqrt (float_of_int arch.patch_dim));
    stages;
    head =
      (let last_dim = match List.rev arch.stage_spec with (_, d, _) :: _ -> d | [] -> assert false in
       Tensor.random_gaussian st last_dim arch.num_classes
         ~std:(1. /. sqrt (float_of_int last_dim)));
    num_classes = arch.num_classes }

(** Scaled-down replica of an architecture (same shape family, reduced
    tokens/dims) for end-to-end proving in tests and quick benches. *)
let shrink arch ~factor =
  (* keep the token count divisible by the product of the stage pools *)
  let total_pool = List.fold_left (fun acc (_, _, p) -> acc * p) 1 arch.stage_spec in
  let tokens =
    let t = Stdlib.max total_pool (arch.tokens / factor) in
    t / total_pool * total_pool
  in
  { arch with
    arch_name = arch.arch_name ^ "-small";
    tokens;
    stage_spec =
      List.map
        (fun (nb, dim, pool) -> (Stdlib.max 1 (nb / 2), Stdlib.max 8 (dim / factor), pool))
        arch.stage_spec }
