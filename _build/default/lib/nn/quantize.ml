(** Integer quantization (NITI-style fixed point): a real value [v] is
    carried as [round(v·S)] with [S = 2^fractional_bits] from
    {!Zkvc.Nonlinear.config}. The integer operations here are the exact
    semantics of the R1CS gadgets, so "quantized forward pass" and
    "circuit witness" agree bit for bit. *)

type qmatrix = { rows : int; cols : int; data : int array }

let create rows cols v = { rows; cols; data = Array.make (rows * cols) v }

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun i -> f (i / cols) (i mod cols)) }

let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v

(* floor division, matching the field gadgets on non-negative operands and
   extending with floor semantics on negatives *)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

let scale cfg = Zkvc.Nonlinear.scale cfg

let quantize cfg (t : Tensor.t) =
  let s = float_of_int (scale cfg) in
  init (Tensor.rows t) (Tensor.cols t) (fun i j ->
      int_of_float (Float.round (Tensor.get t i j *. s)))

let dequantize cfg m =
  let s = float_of_int (scale cfg) in
  Tensor.init m.rows m.cols (fun i j -> float_of_int (get m i j) /. s)

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Quantize.add: shape";
  { a with data = Array.init (Array.length a.data) (fun i -> a.data.(i) + b.data.(i)) }

let transpose m = init m.cols m.rows (fun i j -> get m j i)

(** Integer matmul followed by rescale: both operands at scale S, result at
    scale S (divide the raw S²-scaled accumulation by S). *)
let matmul_rescale cfg a b =
  if a.cols <> b.rows then invalid_arg "Quantize.matmul_rescale: dims";
  let s = scale cfg in
  init a.rows b.cols (fun i j ->
      let acc = ref 0 in
      for k = 0 to a.cols - 1 do
        acc := !acc + (get a i k * get b k j)
      done;
      fdiv !acc s)

(** Raw integer matmul without rescaling (result at scale S²); this is the
    operation the matmul circuits prove. *)
let matmul_raw a b =
  if a.cols <> b.rows then invalid_arg "Quantize.matmul_raw: dims";
  init a.rows b.cols (fun i j ->
      let acc = ref 0 in
      for k = 0 to a.cols - 1 do
        acc := !acc + (get a i k * get b k j)
      done;
      !acc)

let scale_div m d = { m with data = Array.map (fun v -> fdiv v d) m.data }

(** Row-wise quantized softmax via the clipped iterated-squaring
    exponential (identical to the circuit gadget). *)
let softmax_rows cfg m =
  let out = create m.rows m.cols 0 in
  for i = 0 to m.rows - 1 do
    let row = Array.init m.cols (fun j -> get m i j) in
    let probs = Zkvc.Nonlinear.Reference.softmax cfg row in
    for j = 0 to m.cols - 1 do
      set out i j probs.(j)
    done
  done;
  out

let softmax_cols cfg m = transpose (softmax_rows cfg (transpose m))

let gelu cfg m = { m with data = Array.map (Zkvc.Nonlinear.Reference.gelu cfg) m.data }

(** Integer square root (floor), the witness the layer-norm gadget checks
    with [r² ≤ v < (r+1)²]. *)
let isqrt v =
  if v < 0 then invalid_arg "Quantize.isqrt: negative";
  let top = ref 1 in
  while !top * !top <= v do
    top := !top * 2
  done;
  let bit = ref (!top / 2) and rem = ref v and acc = ref 0 in
  while !bit > 0 do
    if !rem >= (2 * !acc * !bit) + (!bit * !bit) then begin
      rem := !rem - ((2 * !acc * !bit) + (!bit * !bit));
      acc := !acc + !bit
    end;
    bit := !bit / 2
  done;
  !acc

(** Quantized per-row layer normalisation: mean and variance by floor
    division, 1/σ through [isqrt]. Gain fixed to 1 and bias 0 (the learned
    affine is folded into the next linear layer). *)
let layernorm cfg m =
  let s = scale cfg in
  let out = create m.rows m.cols 0 in
  for i = 0 to m.rows - 1 do
    let sum = ref 0 in
    for j = 0 to m.cols - 1 do
      sum := !sum + get m i j
    done;
    let mean = fdiv !sum m.cols in
    let var = ref 0 in
    for j = 0 to m.cols - 1 do
      let d = get m i j - mean in
      var := !var + (d * d)
    done;
    let var = fdiv !var m.cols in
    (* sigma at scale S: sqrt(var·S²) since var is at scale S² already:
       var = Σ(dS)²/n is (σ·S)², so isqrt gives σ·S directly *)
    let sigma = Stdlib.max 1 (isqrt var) in
    for j = 0 to m.cols - 1 do
      set out i j (fdiv ((get m i j - mean) * s) sigma)
    done
  done;
  out

let mean_rows m =
  init 1 m.cols (fun _ j ->
      let sum = ref 0 in
      for i = 0 to m.rows - 1 do
        sum := !sum + get m i j
      done;
      fdiv !sum m.rows)

let pool_rows m factor =
  if m.rows mod factor <> 0 then invalid_arg "Quantize.pool_rows: factor";
  init (m.rows / factor) m.cols (fun i j ->
      let sum = ref 0 in
      for k = 0 to factor - 1 do
        sum := !sum + get m ((i * factor) + k) j
      done;
      fdiv !sum factor)

let argmax_row m i =
  let best = ref 0 in
  for j = 1 to m.cols - 1 do
    if get m i j > get m i !best then best := j
  done;
  !best
