(** Integer quantization (NITI-style fixed point): a real [v] is carried
    as [round(v·S)] with [S = 2^fractional_bits] from
    {!Zkvc.Nonlinear.config}. The integer operations here are the exact
    semantics of the R1CS gadgets, so the quantized forward pass and the
    circuit witness agree bit for bit (a tested invariant). *)

type qmatrix = { rows : int; cols : int; data : int array }

val create : int -> int -> int -> qmatrix
val init : int -> int -> (int -> int -> int) -> qmatrix
val get : qmatrix -> int -> int -> int
val set : qmatrix -> int -> int -> int -> unit

(** Floor division (toward −∞), matching the verified-division gadgets. *)
val fdiv : int -> int -> int

val scale : Zkvc.Nonlinear.config -> int
val quantize : Zkvc.Nonlinear.config -> Tensor.t -> qmatrix
val dequantize : Zkvc.Nonlinear.config -> qmatrix -> Tensor.t
val add : qmatrix -> qmatrix -> qmatrix
val transpose : qmatrix -> qmatrix

(** Integer matmul of two scale-S operands, rescaled back to scale S. *)
val matmul_rescale : Zkvc.Nonlinear.config -> qmatrix -> qmatrix -> qmatrix

(** Raw integer matmul (result at scale S²) — what the matmul circuits
    prove. *)
val matmul_raw : qmatrix -> qmatrix -> qmatrix

(** Element-wise floor division by a constant. *)
val scale_div : qmatrix -> int -> qmatrix

(** Row-wise quantized softmax (clipped iterated-squaring exponential). *)
val softmax_rows : Zkvc.Nonlinear.config -> qmatrix -> qmatrix

val softmax_cols : Zkvc.Nonlinear.config -> qmatrix -> qmatrix
val gelu : Zkvc.Nonlinear.config -> qmatrix -> qmatrix

(** Floor integer square root. *)
val isqrt : int -> int

(** Quantized per-row layer normalisation (σ via {!isqrt}). *)
val layernorm : Zkvc.Nonlinear.config -> qmatrix -> qmatrix

val mean_rows : qmatrix -> qmatrix
val pool_rows : qmatrix -> int -> qmatrix
val argmax_row : qmatrix -> int -> int
