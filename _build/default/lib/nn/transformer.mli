(** Transformer models (MetaFormer skeleton): patch/token embedding, a
    stack of blocks (token mixer + GELU MLP, pre-LN, residuals), optional
    hierarchical stages with token pooling and channel expansion, global
    average pooling and a linear classifier head. Provides both a float
    reference forward pass and a quantized forward pass with circuit
    semantics. *)

type block =
  { mixer : Token_mixer.params;
    w1 : Tensor.t;
    w2 : Tensor.t }

type stage =
  { blocks : block list;
    tokens : int;
    dim : int;
    downsample : (int * Tensor.t) option }

type t =
  { name : string;
    patch_dim : int;
    embed : Tensor.t;
    stages : stage list;
    head : Tensor.t;
    num_classes : int }

val num_blocks : t -> int
val mixer_kinds : t -> Token_mixer.kind list

val make_block :
  Random.State.t ->
  kind:Token_mixer.kind ->
  tokens:int ->
  dim:int ->
  heads:int ->
  mlp_ratio:int ->
  block

(** [forward m patches] with [patches : tokens × patch_dim]; returns
    logits (1 × num_classes). *)
val forward : t -> Tensor.t -> Tensor.t

val predict : t -> Tensor.t -> int

type qmodel

val quantize : Zkvc.Nonlinear.config -> t -> qmodel
val qforward : qmodel -> Quantize.qmatrix -> Quantize.qmatrix
val qpredict : qmodel -> Quantize.qmatrix -> int

(** Top-1 agreement between the float reference and the quantized
    (circuit-semantics) forward pass on random inputs — the measurable
    fidelity metric reported in EXPERIMENTS.md. *)
val quantization_agreement : Random.State.t -> t -> qmodel -> samples:int -> float
