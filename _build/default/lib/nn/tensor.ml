(** Minimal dense 2-D float tensors (rows × cols). Transformer activations
    are token × dim matrices throughout, so 2-D is all the model stack
    needs; images enter via patch flattening. *)

type t = { rows : int; cols : int; data : float array }

let create rows cols v =
  if rows <= 0 || cols <= 0 then invalid_arg "Tensor.create";
  { rows; cols; data = Array.make (rows * cols) v }

let zeros rows cols = create rows cols 0.

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun i -> f (i / cols) (i mod cols)) }

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Tensor.of_arrays: empty";
  let cols = Array.length a.(0) in
  init rows cols (fun i j -> a.(i).(j))

let rows t = t.rows
let cols t = t.cols
let get t i j = t.data.((i * t.cols) + j)
let set t i j v = t.data.((i * t.cols) + j) <- v

let map f t = { t with data = Array.map f t.data }

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Tensor.map2: shape";
  { a with data = Array.init (Array.length a.data) (fun i -> f a.data.(i) b.data.(i)) }

let add = map2 ( +. )
let sub = map2 ( -. )
let hadamard = map2 ( *. )
let scale k = map (fun v -> k *. v)

let transpose t = init t.cols t.rows (fun i j -> get t j i)

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Tensor.matmul: inner dims";
  let out = zeros a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          set out i j (get out i j +. (aik *. get b k j))
        done
    done
  done;
  out

(** Row-wise softmax. *)
let softmax_rows t =
  let out = zeros t.rows t.cols in
  for i = 0 to t.rows - 1 do
    let m = ref neg_infinity in
    for j = 0 to t.cols - 1 do
      if get t i j > !m then m := get t i j
    done;
    let sum = ref 0. in
    for j = 0 to t.cols - 1 do
      let e = exp (get t i j -. !m) in
      set out i j e;
      sum := !sum +. e
    done;
    for j = 0 to t.cols - 1 do
      set out i j (get out i j /. !sum)
    done
  done;
  out

(** Column-wise softmax (used by scaling attention). *)
let softmax_cols t = transpose (softmax_rows (transpose t))

let gelu_exact v = 0.5 *. v *. (1. +. tanh (sqrt (2. /. Float.pi) *. (v +. (0.044715 *. v *. v *. v))))

(** Row mean as a column vector (rows × 1). *)
let row_mean t =
  init t.rows 1 (fun i _ ->
      let s = ref 0. in
      for j = 0 to t.cols - 1 do
        s := !s +. get t i j
      done;
      !s /. float_of_int t.cols)

(** Per-row layer normalisation with learned gain/bias vectors. *)
let layernorm ?(eps = 1e-5) t ~gamma ~beta =
  let out = zeros t.rows t.cols in
  for i = 0 to t.rows - 1 do
    let mean = ref 0. in
    for j = 0 to t.cols - 1 do
      mean := !mean +. get t i j
    done;
    let mean = !mean /. float_of_int t.cols in
    let var = ref 0. in
    for j = 0 to t.cols - 1 do
      let d = get t i j -. mean in
      var := !var +. (d *. d)
    done;
    let var = !var /. float_of_int t.cols in
    let denom = sqrt (var +. eps) in
    for j = 0 to t.cols - 1 do
      set out i j ((gamma.(j) *. (get t i j -. mean) /. denom) +. beta.(j))
    done
  done;
  out

(** Mean over all rows, producing a 1 × cols tensor (global pooling). *)
let mean_rows t =
  init 1 t.cols (fun _ j ->
      let s = ref 0. in
      for i = 0 to t.rows - 1 do
        s := !s +. get t i j
      done;
      !s /. float_of_int t.rows)

(** Token down-sampling by averaging consecutive groups of [factor] rows. *)
let pool_rows t factor =
  if t.rows mod factor <> 0 then invalid_arg "Tensor.pool_rows: factor";
  init (t.rows / factor) t.cols (fun i j ->
      let s = ref 0. in
      for k = 0 to factor - 1 do
        s := !s +. get t ((i * factor) + k) j
      done;
      !s /. float_of_int factor)

let argmax_row t i =
  let best = ref 0 in
  for j = 1 to t.cols - 1 do
    if get t i j > get t i !best then best := j
  done;
  !best

(** Seeded Gaussian init (Box–Muller), std scaled for fan-in. *)
let random_gaussian st rows cols ~std =
  init rows cols (fun _ _ ->
      let u1 = Stdlib.max 1e-12 (Random.State.float st 1.) in
      let u2 = Random.State.float st 1. in
      std *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let frobenius_diff a b =
  let d = sub a b in
  sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0. d.data)
