(** The token mixers the paper compares (Tables III/IV):
    - [Softmax_attn] — standard multi-head self-attention (the paper's
      "SoftApprox." when its softmax is the ZKP-friendly approximation);
    - [Scaling_attn] — softmax-free scaling attention
      (Q·(KᵀV)/#tokens, linear complexity): SoftFree-S;
    - [Pooling] — MetaFormer-style average pooling: SoftFree-P;
    - [Linear_mix] — FNet-style fixed linear token transform: SoftFree-L. *)

type kind = Softmax_attn | Scaling_attn | Pooling | Linear_mix

val kind_name : kind -> string

type params =
  { kind : kind;
    heads : int;
    wq : Tensor.t;
    wk : Tensor.t;
    wv : Tensor.t;
    wo : Tensor.t;
    token_mix : Tensor.t option (** tokens × tokens, [Linear_mix] only *) }

val create : Random.State.t -> kind:kind -> tokens:int -> dim:int -> heads:int -> params

(** Float reference forward pass (tokens × dim in and out). *)
val forward : params -> Tensor.t -> Tensor.t

type qparams

val quantize_params : Zkvc.Nonlinear.config -> params -> qparams

(** Quantized forward pass with circuit semantics. *)
val forward_quantized : Zkvc.Nonlinear.config -> qparams -> Quantize.qmatrix -> Quantize.qmatrix
