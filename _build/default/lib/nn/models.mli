(** The model zoo of the paper's evaluation (Section IV): CIFAR-10 ViT
    (7L/4H/256), Tiny-ImageNet ViT (9L/12H/192), hierarchical ImageNet
    ViT (12L, dims 64/128/320/512), and BERT-4L for GLUE — each
    instantiable with any token-mixer variant from Tables III/IV. *)

type variant = Soft_approx | Soft_free_s | Soft_free_p | Soft_free_l | Zkvc_hybrid

val variant_name : variant -> string

type arch =
  { arch_name : string;
    domain : [ `Vision | `Nlp ];
    tokens : int;
    patch_dim : int;
    heads : int;
    mlp_ratio : int;
    num_classes : int;
    stage_spec : (int * int * int) list
        (** per stage: (blocks, dim, pool factor entering the stage) *) }

val vit_cifar10 : arch
val vit_tiny_imagenet : arch
val vit_imagenet : arch
val bert_glue : arch
val all_archs : arch list

(** The planner's per-block mixer choice. The zkVC hybrid keeps
    softmax-free mixers early and reintroduces softmax attention only on
    late blocks with short token sequences (paper, Results). *)
val mixer_for :
  arch -> variant -> block_index:int -> total_blocks:int -> tokens:int -> Token_mixer.kind

(** Instantiate with seeded synthetic weights (DESIGN.md substitution 3). *)
val build : Random.State.t -> arch -> variant -> Transformer.t

(** Scaled-down replica (same shape family) for end-to-end proving in
    tests and examples; keeps tokens divisible by the stage pools. *)
val shrink : arch -> factor:int -> arch
