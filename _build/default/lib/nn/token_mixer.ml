(** The token mixers the paper compares (Table III / IV):

    - [Softmax_attn]  — standard multi-head self-attention ("SoftApprox."
      when its softmax is the ZKP-friendly approximation);
    - [Scaling_attn]  — softmax-free scaling attention (Shen et al. /
      non-local style): Q · (Kᵀ·V) / #tokens — linear complexity and no
      softmax gadgets at all, the paper's SoftFree-S;
    - [Pooling]       — MetaFormer-style average pooling, SoftFree-P;
    - [Linear_mix]    — FNet-style fixed linear transform over the token
      dimension, SoftFree-L. *)

type kind = Softmax_attn | Scaling_attn | Pooling | Linear_mix

let kind_name = function
  | Softmax_attn -> "softmax"
  | Scaling_attn -> "scaling"
  | Pooling -> "pooling"
  | Linear_mix -> "linear"

type params =
  { kind : kind;
    heads : int;
    wq : Tensor.t; (* dim × dim; unused by Pooling/Linear_mix *)
    wk : Tensor.t;
    wv : Tensor.t;
    wo : Tensor.t;
    token_mix : Tensor.t option (* tokens × tokens, Linear_mix only *) }

let create st ~kind ~tokens ~dim ~heads =
  let std = 1. /. sqrt (float_of_int dim) in
  let mk () = Tensor.random_gaussian st dim dim ~std in
  { kind;
    heads;
    wq = mk ();
    wk = mk ();
    wv = mk ();
    wo = mk ();
    token_mix =
      (match kind with
       | Linear_mix ->
         Some (Tensor.random_gaussian st tokens tokens ~std:(1. /. sqrt (float_of_int tokens)))
       | Softmax_attn | Scaling_attn | Pooling -> None) }

let slice_cols t lo width = Tensor.init (Tensor.rows t) width (fun i j -> Tensor.get t i (lo + j))

let concat_cols parts =
  match parts with
  | [] -> invalid_arg "concat_cols"
  | first :: _ ->
    let rows = Tensor.rows first in
    let total = List.fold_left (fun acc p -> acc + Tensor.cols p) 0 parts in
    let out = Tensor.zeros rows total in
    let off = ref 0 in
    List.iter
      (fun p ->
        for i = 0 to rows - 1 do
          for j = 0 to Tensor.cols p - 1 do
            Tensor.set out i (!off + j) (Tensor.get p i j)
          done
        done;
        off := !off + Tensor.cols p)
      parts;
    out

(* ---------------- float reference forward ---------------- *)

let forward p x =
  match p.kind with
  | Pooling ->
    (* PoolFormer-style: average over tokens, broadcast back *)
    let m = Tensor.mean_rows x in
    Tensor.init (Tensor.rows x) (Tensor.cols x) (fun _ j -> Tensor.get m 0 j)
  | Linear_mix ->
    (match p.token_mix with
     | Some m -> Tensor.matmul m x
     | None -> assert false)
  | Softmax_attn | Scaling_attn ->
    let q = Tensor.matmul x p.wq
    and k = Tensor.matmul x p.wk
    and v = Tensor.matmul x p.wv in
    let dim = Tensor.cols x in
    let dh = dim / p.heads in
    let heads =
      List.init p.heads (fun h ->
          let qh = slice_cols q (h * dh) dh
          and kh = slice_cols k (h * dh) dh
          and vh = slice_cols v (h * dh) dh in
          match p.kind with
          | Softmax_attn ->
            let scores =
              Tensor.scale (1. /. sqrt (float_of_int dh)) (Tensor.matmul qh (Tensor.transpose kh))
            in
            Tensor.matmul (Tensor.softmax_rows scores) vh
          | Scaling_attn ->
            (* softmax-free: Q·(KᵀV)/t, linear in tokens *)
            let ctx =
              Tensor.scale
                (1. /. float_of_int (Tensor.rows x))
                (Tensor.matmul (Tensor.transpose kh) vh)
            in
            Tensor.matmul qh ctx
          | Pooling | Linear_mix -> assert false)
    in
    Tensor.matmul (concat_cols heads) p.wo

(* ---------------- quantized forward (circuit semantics) ---------------- *)

module Q = Quantize

type qparams =
  { qkind : kind;
    qheads : int;
    qwq : Q.qmatrix;
    qwk : Q.qmatrix;
    qwv : Q.qmatrix;
    qwo : Q.qmatrix;
    qtoken_mix : Q.qmatrix option }

let quantize_params cfg p =
  { qkind = p.kind;
    qheads = p.heads;
    qwq = Q.quantize cfg p.wq;
    qwk = Q.quantize cfg p.wk;
    qwv = Q.quantize cfg p.wv;
    qwo = Q.quantize cfg p.wo;
    qtoken_mix = Option.map (Q.quantize cfg) p.token_mix }

let qslice_cols m lo width = Q.init m.Q.rows width (fun i j -> Q.get m i (lo + j))

let qconcat_cols parts =
  match parts with
  | [] -> invalid_arg "qconcat_cols"
  | first :: _ ->
    let rows = first.Q.rows in
    let total = List.fold_left (fun acc p -> acc + p.Q.cols) 0 parts in
    let out = Q.create rows total 0 in
    let off = ref 0 in
    List.iter
      (fun p ->
        for i = 0 to rows - 1 do
          for j = 0 to p.Q.cols - 1 do
            Q.set out i (!off + j) (Q.get p i j)
          done
        done;
        off := !off + p.Q.cols)
      parts;
    out

let forward_quantized cfg p x =
  match p.qkind with
  | Pooling ->
    let m = Q.mean_rows x in
    Q.init x.Q.rows x.Q.cols (fun _ j -> Q.get m 0 j)
  | Linear_mix ->
    (match p.qtoken_mix with
     | Some m -> Q.matmul_rescale cfg m x
     | None -> assert false)
  | Softmax_attn | Scaling_attn ->
    let q = Q.matmul_rescale cfg x p.qwq
    and k = Q.matmul_rescale cfg x p.qwk
    and v = Q.matmul_rescale cfg x p.qwv in
    let dh = x.Q.cols / p.qheads in
    let heads =
      List.init p.qheads (fun h ->
          let qh = qslice_cols q (h * dh) dh
          and kh = qslice_cols k (h * dh) dh
          and vh = qslice_cols v (h * dh) dh in
          match p.qkind with
          | Softmax_attn ->
            let scores = Q.matmul_rescale cfg qh (Q.transpose kh) in
            let scaled = Q.scale_div scores (Stdlib.max 1 (Quantize.isqrt dh)) in
            Q.matmul_rescale cfg (Q.softmax_rows cfg scaled) vh
          | Scaling_attn ->
            let ctx =
              Q.scale_div (Q.matmul_rescale cfg (Q.transpose kh) vh) x.Q.rows
            in
            Q.matmul_rescale cfg qh ctx
          | Pooling | Linear_mix -> assert false)
    in
    Q.matmul_rescale cfg (qconcat_cols heads) p.qwo
