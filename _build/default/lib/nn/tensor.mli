(** Dense 2-D float tensors (rows × cols). Transformer activations are
    token × dim matrices throughout; images enter via patch flattening. *)

type t

val create : int -> int -> float -> t
val zeros : int -> int -> t
val init : int -> int -> (int -> int -> float) -> t
val of_arrays : float array array -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val add : t -> t -> t
val sub : t -> t -> t
val hadamard : t -> t -> t
val scale : float -> t -> t
val transpose : t -> t
val matmul : t -> t -> t

(** Row-wise softmax. *)
val softmax_rows : t -> t

(** Column-wise softmax. *)
val softmax_cols : t -> t

(** Exact GELU (tanh form). *)
val gelu_exact : float -> float

(** Row means as a rows × 1 tensor. *)
val row_mean : t -> t

(** Per-row layer normalisation with learned gain/bias. *)
val layernorm : ?eps:float -> t -> gamma:float array -> beta:float array -> t

(** Mean over all rows (1 × cols). *)
val mean_rows : t -> t

(** Token down-sampling by averaging groups of [factor] consecutive rows. *)
val pool_rows : t -> int -> t

val argmax_row : t -> int -> int

(** Seeded Gaussian init (Box–Muller). *)
val random_gaussian : Random.State.t -> int -> int -> std:float -> t

val frobenius_diff : t -> t -> float
