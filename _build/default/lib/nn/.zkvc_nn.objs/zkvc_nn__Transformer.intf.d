lib/nn/transformer.mli: Quantize Random Tensor Token_mixer Zkvc
