lib/nn/tensor.ml: Array Float Random Stdlib
