lib/nn/tensor.mli: Random
