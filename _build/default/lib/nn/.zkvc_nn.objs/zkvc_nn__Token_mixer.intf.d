lib/nn/token_mixer.mli: Quantize Random Tensor Zkvc
