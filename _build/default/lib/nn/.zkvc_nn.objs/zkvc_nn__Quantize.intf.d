lib/nn/quantize.mli: Tensor Zkvc
