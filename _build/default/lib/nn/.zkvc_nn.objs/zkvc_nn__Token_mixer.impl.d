lib/nn/token_mixer.ml: List Option Quantize Stdlib Tensor
