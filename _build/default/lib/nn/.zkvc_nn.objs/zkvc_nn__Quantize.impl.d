lib/nn/quantize.ml: Array Float Stdlib Tensor Zkvc
