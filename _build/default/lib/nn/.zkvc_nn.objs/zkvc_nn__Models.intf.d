lib/nn/models.mli: Random Token_mixer Transformer
