lib/nn/transformer.ml: Array List Option Quantize Tensor Token_mixer Zkvc
