lib/nn/models.ml: List Printf Stdlib Tensor Token_mixer Transformer
