(** Transformer models (MetaFormer skeleton): patch/token embedding, a
    stack of blocks (token mixer + MLP with GELU, pre-LN, residuals),
    optional hierarchical stages with token pooling and channel expansion,
    global average pooling and a linear classifier head. Both a float
    reference forward pass and a quantized forward pass with circuit
    semantics are provided. *)

module Q = Quantize

type block =
  { mixer : Token_mixer.params;
    w1 : Tensor.t; (* dim × mlp_dim *)
    w2 : Tensor.t (* mlp_dim × dim *) }

type stage =
  { blocks : block list;
    tokens : int;
    dim : int;
    (* hierarchical models downsample tokens and expand channels between
       stages via this projection (prev_dim × dim); None for stage 0 of
       flat models *)
    downsample : (int * Tensor.t) option }

type t =
  { name : string;
    patch_dim : int; (* flattened patch pixels *)
    embed : Tensor.t; (* patch_dim × dim of first stage *)
    stages : stage list;
    head : Tensor.t; (* last dim × num_classes *)
    num_classes : int }

let num_blocks m = List.fold_left (fun acc s -> acc + List.length s.blocks) 0 m.stages

let mixer_kinds m =
  List.concat_map (fun s -> List.map (fun b -> b.mixer.Token_mixer.kind) s.blocks) m.stages

(* ---------------- construction ---------------- *)

let make_block st ~kind ~tokens ~dim ~heads ~mlp_ratio =
  let mlp_dim = mlp_ratio * dim in
  let std d = 1. /. sqrt (float_of_int d) in
  { mixer = Token_mixer.create st ~kind ~tokens ~dim ~heads;
    w1 = Tensor.random_gaussian st dim mlp_dim ~std:(std dim);
    w2 = Tensor.random_gaussian st mlp_dim dim ~std:(std mlp_dim) }

(* ---------------- float forward ---------------- *)

let ln x =
  let gamma = Array.make (Tensor.cols x) 1. and beta = Array.make (Tensor.cols x) 0. in
  Tensor.layernorm x ~gamma ~beta

let block_forward b x =
  let x = Tensor.add x (Token_mixer.forward b.mixer (ln x)) in
  let mlp h = Tensor.matmul (Tensor.map Tensor.gelu_exact (Tensor.matmul h b.w1)) b.w2 in
  Tensor.add x (mlp (ln x))

let stage_forward s x =
  let x =
    match s.downsample with
    | None -> x
    | Some (factor, proj) -> Tensor.matmul (Tensor.pool_rows x factor) proj
  in
  List.fold_left (fun acc b -> block_forward b acc) x s.blocks

(** [forward m patches]: [patches] is tokens × patch_dim. Returns logits
    (1 × num_classes). *)
let forward m patches =
  let x = Tensor.matmul patches m.embed in
  let x = List.fold_left (fun acc s -> stage_forward s acc) x m.stages in
  Tensor.matmul (Tensor.mean_rows (ln x)) m.head

let predict m patches = Tensor.argmax_row (forward m patches) 0

(* ---------------- quantized forward ---------------- *)

type qblock =
  { qmixer : Token_mixer.qparams;
    qw1 : Q.qmatrix;
    qw2 : Q.qmatrix }

type qstage =
  { qblocks : qblock list;
    qdownsample : (int * Q.qmatrix) option }

type qmodel =
  { qembed : Q.qmatrix;
    qstages : qstage list;
    qhead : Q.qmatrix;
    cfg : Zkvc.Nonlinear.config }

let quantize cfg m =
  { qembed = Q.quantize cfg m.embed;
    qstages =
      List.map
        (fun s ->
          { qblocks =
              List.map
                (fun b ->
                  { qmixer = Token_mixer.quantize_params cfg b.mixer;
                    qw1 = Q.quantize cfg b.w1;
                    qw2 = Q.quantize cfg b.w2 })
                s.blocks;
            qdownsample = Option.map (fun (f, p) -> (f, Q.quantize cfg p)) s.downsample })
        m.stages;
    qhead = Q.quantize cfg m.head;
    cfg }

let qblock_forward cfg b x =
  let x = Q.add x (Token_mixer.forward_quantized cfg b.qmixer (Q.layernorm cfg x)) in
  let mlp h = Q.matmul_rescale cfg (Q.gelu cfg (Q.matmul_rescale cfg h b.qw1)) b.qw2 in
  Q.add x (mlp (Q.layernorm cfg x))

let qforward qm patches =
  let cfg = qm.cfg in
  let x = Q.matmul_rescale cfg patches qm.qembed in
  let x =
    List.fold_left
      (fun acc s ->
        let acc =
          match s.qdownsample with
          | None -> acc
          | Some (f, proj) -> Q.matmul_rescale cfg (Q.pool_rows acc f) proj
        in
        List.fold_left (fun a b -> qblock_forward cfg b a) acc s.qblocks)
      x qm.qstages
  in
  Q.matmul_rescale cfg (Q.mean_rows (Q.layernorm cfg x)) qm.qhead

let qpredict qm patches = Q.argmax_row (qforward qm patches) 0

(** Fidelity metric reported in EXPERIMENTS.md: top-1 agreement between
    the float reference and the quantized (circuit-semantics) forward pass
    on random inputs. *)
let quantization_agreement st m qm ~samples =
  let tokens = (List.hd m.stages).tokens in
  let agree = ref 0 in
  for _ = 1 to samples do
    let patches = Tensor.random_gaussian st tokens m.patch_dim ~std:1.0 in
    let qpatches = Q.quantize qm.cfg patches in
    if predict m patches = qpredict qm qpatches then incr agree
  done;
  float_of_int !agree /. float_of_int samples
