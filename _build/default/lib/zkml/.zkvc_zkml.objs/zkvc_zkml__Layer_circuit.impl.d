lib/zkml/layer_circuit.ml: Hashtbl List Ops Random Zkvc Zkvc_field Zkvc_nn Zkvc_num Zkvc_r1cs
