lib/zkml/compiler.ml: Layer_circuit List Ops Printf Zkvc Zkvc_field Zkvc_nn
