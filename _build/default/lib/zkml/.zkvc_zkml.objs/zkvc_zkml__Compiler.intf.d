lib/zkml/compiler.mli: Layer_circuit Ops Zkvc Zkvc_field Zkvc_nn
