lib/zkml/ops.ml: Format Zkvc
