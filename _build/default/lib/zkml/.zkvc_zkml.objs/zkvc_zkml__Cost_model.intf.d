lib/zkml/cost_model.mli: Zkvc Zkvc_field Zkvc_r1cs
