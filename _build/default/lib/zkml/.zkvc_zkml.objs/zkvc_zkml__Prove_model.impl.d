lib/zkml/prove_model.ml: Array Compiler Cost_model Layer_circuit List Ops Option Random Sys Zkvc Zkvc_field Zkvc_groth16 Zkvc_nn Zkvc_r1cs Zkvc_spartan
