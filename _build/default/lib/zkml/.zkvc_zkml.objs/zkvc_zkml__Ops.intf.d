lib/zkml/ops.mli: Format Zkvc
