lib/zkml/cost_model.ml: List Random Stdlib Sys Zkvc Zkvc_field Zkvc_groth16 Zkvc_r1cs Zkvc_spartan
