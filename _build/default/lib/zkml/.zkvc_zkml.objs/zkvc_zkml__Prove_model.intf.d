lib/zkml/prove_model.mli: Cost_model Ops Zkvc Zkvc_field Zkvc_nn Zkvc_r1cs
