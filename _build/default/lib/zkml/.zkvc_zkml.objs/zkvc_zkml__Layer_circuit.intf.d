lib/zkml/layer_circuit.mli: Ops Zkvc Zkvc_field Zkvc_num Zkvc_r1cs
