(** End-to-end verifiable-inference measurements: real per-layer proofs at
    tractable sizes, and calibrated extrapolation to the paper's model
    scales through exact constraint counts (DESIGN.md, "Reproduction
    scaling"). *)

module Fr = Zkvc_field.Fr
module Models = Zkvc_nn.Models

(** Prove one op-circuit for real; returns
    (constraints, prove s, verify s, proof bytes). Raises [Failure] if
    the produced proof does not verify. *)
val prove_op :
  ?strategy:Zkvc.Matmul_circuit.strategy ->
  Cost_model.backend ->
  Zkvc.Nonlinear.config ->
  Ops.t ->
  int * float * float * int

(** Exact counts + extrapolated proving seconds for a full model. *)
val estimate_model :
  ?strategy:Zkvc.Matmul_circuit.strategy ->
  calib:Cost_model.calibration ->
  Zkvc.Nonlinear.config ->
  Models.arch ->
  Models.variant ->
  Ops.counts * float

type table3_row =
  { dataset : string;
    variant : Models.variant;
    paper_top1 : float option;
    constraints : int;
    est_prove_g : float;
    est_prove_s : float;
    paper_prove_g : float option;
    paper_prove_s : float option }

(** One Table-III-style row: exact counts, both backends' estimates, and
    the paper's reported values for shape comparison. *)
val table3_row :
  ?strategy:Zkvc.Matmul_circuit.strategy ->
  calib_g:Cost_model.calibration ->
  calib_s:Cost_model.calibration ->
  Zkvc.Nonlinear.config ->
  dataset:string ->
  Models.arch ->
  Models.variant ->
  table3_row

(** A real, fully provable linear layer (matmul with the chosen strategy +
    per-element rescale) over integer inputs; returns the compiled system,
    the full assignment and the rescaled output values (which match
    {!Zkvc_nn.Quantize.matmul_rescale} bit for bit). *)
val linear_layer_circuit :
  ?strategy:Zkvc.Matmul_circuit.strategy ->
  Zkvc.Nonlinear.config ->
  x:int array array ->
  w:int array array ->
  Zkvc.Matmul_spec.dims ->
  Zkvc_r1cs.Constraint_system.Make(Fr).t * Fr.t array * Fr.t array array
