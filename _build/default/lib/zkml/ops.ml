(** The primitive verifiable operations a Transformer inference decomposes
    into. The compiler ({!Compiler}) lowers a model to a multiset of these;
    {!Layer_circuit} knows how to build each as an R1CS and how to count
    its constraints without building the full-size circuit. *)

type t =
  | Op_matmul of Zkvc.Matmul_spec.dims
  | Op_rescale of int (* fixed-point re-normalisations, per element *)
  | Op_scale_div of { elems : int; divisor : int } (* verified /c per element *)
  | Op_softmax of { rows : int; len : int }
  | Op_gelu of int (* activations, per element *)
  | Op_layernorm of { rows : int; cols : int }
  | Op_mean_pool of { out_elems : int; window : int }

let name = function
  | Op_matmul _ -> "matmul"
  | Op_rescale _ -> "rescale"
  | Op_scale_div _ -> "scale-div"
  | Op_softmax _ -> "softmax"
  | Op_gelu _ -> "gelu"
  | Op_layernorm _ -> "layernorm"
  | Op_mean_pool _ -> "mean-pool"

let pp fmt = function
  | Op_matmul d -> Format.fprintf fmt "matmul %a" Zkvc.Matmul_spec.pp_dims d
  | Op_rescale n -> Format.fprintf fmt "rescale x%d" n
  | Op_scale_div { elems; divisor } -> Format.fprintf fmt "scale-div x%d by %d" elems divisor
  | Op_softmax { rows; len } -> Format.fprintf fmt "softmax %d rows of %d" rows len
  | Op_gelu n -> Format.fprintf fmt "gelu x%d" n
  | Op_layernorm { rows; cols } -> Format.fprintf fmt "layernorm %d x %d" rows cols
  | Op_mean_pool { out_elems; window } ->
    Format.fprintf fmt "mean-pool %d outs (window %d)" out_elems window

type counts = { constraints : int; variables : int }

let zero_counts = { constraints = 0; variables = 0 }

let add_counts a b =
  { constraints = a.constraints + b.constraints; variables = a.variables + b.variables }

let scale_counts k c = { constraints = k * c.constraints; variables = k * c.variables }
