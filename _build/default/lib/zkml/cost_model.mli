(** Prover-cost calibration (real proofs on synthetic circuits, fitted to
    [t(n) = α·n + β·n·log₂ n], coefficients clamped non-negative) and the
    paper's reported numbers for every evaluation table, including the
    emulated prior systems (DESIGN.md substitution 4). *)

type backend = Zkvc.Api.backend = Backend_groth16 | Backend_spartan

(** A squaring-chain R1CS with [n] constraints (calibration workload). *)
val synthetic_circuit :
  int ->
  Zkvc_r1cs.Constraint_system.Make(Zkvc_field.Fr).t * Zkvc_field.Fr.t array

(** Real prover wall time at the given constraint count. *)
val measure_prove : backend -> int -> float

type calibration = { alpha : float; beta : float }

val fit : int * float -> int * float -> calibration

(** Calibrate a backend with real proofs at two circuit sizes. *)
val calibrate : ?n1:int -> ?n2:int -> backend -> calibration

(** Extrapolated proving seconds at [n] constraints. *)
val estimate : calibration -> int -> float

(** Paper Table II rows:
    (crpc, psq, g16 prove, g16 verify, spartan prove, spartan verify). *)
val paper_table2 : (bool * bool * float * float * float * float) list

type scheme =
  { scheme_name : string;
    interactive : bool;
    constant_proof : bool;
    trusted_setup : bool;
    emulated : bool;
    paper_prove_s : float;
    paper_verify_s : float;
    paper_proof_kb : float }

(** The Figure 3 / 6 / Table I comparison set. *)
val schemes : scheme list

(** Paper Table III rows: (dataset, variant, top-1 %, P_G s, P_S s). *)
val paper_table3 : (string * string * float * float * float) list

(** Paper Table IV rows: (variant, MNLI, QNLI, SST-2, MRPC, P_G, P_S). *)
val paper_table4 : (string * float * float * float * float * float * float) list

val paper_accuracy : dataset:string -> variant:string -> float option
