(** The primitive verifiable operations a Transformer inference decomposes
    into. {!Compiler} lowers a model to a multiset of these;
    {!Layer_circuit} builds each as an R1CS and counts its constraints
    without building full-size circuits. *)

type t =
  | Op_matmul of Zkvc.Matmul_spec.dims
  | Op_rescale of int (** fixed-point re-normalisations, per element *)
  | Op_scale_div of { elems : int; divisor : int }
      (** verified floor division by a constant, per element *)
  | Op_softmax of { rows : int; len : int }
  | Op_gelu of int (** activations, per element *)
  | Op_layernorm of { rows : int; cols : int }
  | Op_mean_pool of { out_elems : int; window : int }

val name : t -> string
val pp : Format.formatter -> t -> unit

type counts = { constraints : int; variables : int }

val zero_counts : counts
val add_counts : counts -> counts -> counts
val scale_counts : int -> counts -> counts
