(** R1CS constructions for each {!Ops.t}, on top of the generic gadgets
    and zkVC's non-linear approximations. Signed fixed-point values are
    embedded as [v mod p]; division-flavoured gadgets shift their dividend
    by a large constant multiple of the divisor first, preserving floor
    semantics while keeping the dividend a genuine non-negative integer. *)

module Nl = Zkvc.Nonlinear

module Make (F : Zkvc_field.Field_intf.S) : sig
  module L : module type of Zkvc_r1cs.Lc.Make (F)
  module B : module type of Zkvc_r1cs.Builder.Make (F)
  module Mc : module type of Zkvc.Matmul_circuit.Make (F)
  module Spec : module type of Zkvc.Matmul_spec.Make (F)
  module Cs : module type of Zkvc_r1cs.Constraint_system.Make (F)

  (** Signed floor division by a positive constant. *)
  val signed_div_by_constant : B.t -> Nl.config -> L.t -> Zkvc_num.Bigint.t -> L.t

  (** Signed floor division by a positive wire divisor. *)
  val signed_div_rem : B.t -> Nl.config -> L.t -> L.t -> r_width:int -> L.t

  (** Fixed-point rescale [floor(x/S)] of a (possibly signed) raw
      product. *)
  val rescale : B.t -> Nl.config -> L.t -> L.t

  (** Softmax over signed score wires (shift-invariance used to offset
      into the unsigned gadget's domain). *)
  val softmax_row : B.t -> Nl.config -> L.var list -> L.var list

  val gelu : B.t -> Nl.config -> L.var -> L.var

  (** Integer-sqrt gadget: wire [r] with [r² ≤ v < (r+1)²]. *)
  val isqrt : B.t -> Nl.config -> L.t -> L.var

  (** Per-row layer normalisation, matching
      {!Zkvc_nn.Quantize.layernorm} bit for bit. *)
  val layernorm_row : B.t -> Nl.config -> L.var list -> L.t list

  (** Average of the wires with verified floor division. *)
  val mean_pool : B.t -> Nl.config -> L.var list -> L.t

  (** Build a representative circuit for [op] with synthetic witness
      values (shape depends only on [op] and the config). *)
  val build_op : ?strategy:Zkvc.Matmul_circuit.strategy -> B.t -> Nl.config -> Ops.t -> unit

  (** Exact counts for an op using O(1)-size unit builds (memoized) plus
      exact replication; matmuls use the closed-form counts. Validated
      against direct builds by the test suite. *)
  val count : ?strategy:Zkvc.Matmul_circuit.strategy -> Nl.config -> Ops.t -> Ops.counts
end
