lib/qap/qap.mli: Zkvc_field Zkvc_r1cs
