lib/qap/qap.ml: Array List Zkvc_field Zkvc_num Zkvc_poly Zkvc_r1cs
