module Fr = Zkvc_field.Fr
module Ml = Zkvc_poly.Multilinear.Make (Fr)
module Sc = Zkvc_spartan.Sumcheck.Make (Fr)
module T = Zkvc_transcript.Transcript
module Ch = T.Challenge (Fr)

type proof =
  { rounds : Sc.proof;
    va : Fr.t; (* Ã(rx, rk) *)
    vb : Fr.t (* B̃(rk, ry) *) }

let fr_bytes = 32

let proof_size_bytes p =
  List.fold_left (fun acc evals -> acc + (Array.length evals * fr_bytes)) (2 * fr_bytes)
    p.rounds

let log2_ceil n =
  let rec go k p = if p >= n then k else go (k + 1) (2 * p) in
  go 0 1

(* Flatten a matrix into the evaluation table of its MLE over
   (row-bits, col-bits), padding with zeros to powers of two. *)
let mle_table m ~rows_log ~cols_log =
  let rows = Array.length m in
  let table = Array.make (1 lsl (rows_log + cols_log)) Fr.zero in
  Array.iteri
    (fun i row ->
      Array.iteri (fun j v -> table.((i lsl cols_log) lor j) <- v) row)
    m;
  ignore rows;
  table

let transpose m =
  let rows = Array.length m and cols = Array.length m.(0) in
  Array.init cols (fun j -> Array.init rows (fun i -> m.(i).(j)))

let check_rect name m =
  if Array.length m = 0 then invalid_arg (name ^ ": empty matrix");
  let cols = Array.length m.(0) in
  if cols = 0 then invalid_arg (name ^ ": empty row");
  Array.iter (fun row -> if Array.length row <> cols then invalid_arg (name ^ ": ragged")) m;
  cols

let dims_of a b =
  let n_a = check_rect "Thaler_matmul: a" a in
  let n_b = Array.length b in
  let cols_b = check_rect "Thaler_matmul: b" b in
  if n_a <> n_b then invalid_arg "Thaler_matmul: inner dimensions differ";
  (log2_ceil (Array.length a), log2_ceil n_a, log2_ceil cols_b)

let multiply a b =
  let n = Array.length b and cols = Array.length b.(0) in
  Array.map
    (fun row ->
      Array.init cols (fun j ->
          let acc = ref Fr.zero in
          for k = 0 to n - 1 do
            acc := Fr.add !acc (Fr.mul row.(k) b.(k).(j))
          done;
          !acc))
    a

let transcript_setup ~mu1 ~nu ~mu2 c =
  let tr = T.create ~label:"zkvc.thaler.matmul" in
  T.absorb_int tr ~label:"mu1" mu1;
  T.absorb_int tr ~label:"nu" nu;
  T.absorb_int tr ~label:"mu2" mu2;
  Array.iter (fun row -> Ch.absorb_array tr ~label:"c" row) c;
  let rx = Ch.challenges tr ~label:"rx" mu1 in
  let ry = Ch.challenges tr ~label:"ry" mu2 in
  (tr, rx, ry)

(* fold the first [k] variables of an MLE table with the challenges *)
let fold_prefix table vars point =
  let m = ref (Ml.of_evals table) in
  List.iter (fun r -> m := Ml.fix_first !m r) point;
  ignore vars;
  Ml.evals !m

let prove ~a ~b =
  let mu1, nu, mu2 = dims_of a b in
  let c = multiply a b in
  let tr, rx, ry = transcript_setup ~mu1 ~nu ~mu2 c in
  (* Ax(k) = Ã(rx, k);  By(k) = B̃(k, ry) via the transpose trick *)
  let ax = fold_prefix (mle_table a ~rows_log:mu1 ~cols_log:nu) mu1 rx in
  let by = fold_prefix (mle_table (transpose b) ~rows_log:mu2 ~cols_log:nu) mu2 ry in
  let rounds, _rk, finals =
    Sc.prove tr ~label:"thaler" ~degree:2 [| ax; by |]
      ~combine:(fun v -> Fr.mul v.(0) v.(1))
  in
  { rounds; va = finals.(0); vb = finals.(1) }

let verify ~a ~b ~c proof =
  match dims_of a b with
  | exception Invalid_argument _ -> false
  | mu1, nu, mu2 ->
    if Array.length c <> Array.length a then false
    else begin
      let tr, rx, ry = transcript_setup ~mu1 ~nu ~mu2 c in
      (* claimed value: C̃(rx, ry), evaluated by the verifier *)
      let c_table = mle_table c ~rows_log:mu1 ~cols_log:mu2 in
      let claim = Ml.eval (Ml.of_evals c_table) (rx @ ry) in
      match Sc.verify tr ~label:"thaler" ~degree:2 ~claim proof.rounds with
      | None -> false
      | Some (final_claim, rk) ->
        if not (Fr.equal final_claim (Fr.mul proof.va proof.vb)) then false
        else begin
          (* open Ã and B̃ at (rx, rk) / (rk, ry) directly *)
          let a_eval = Ml.eval (Ml.of_evals (mle_table a ~rows_log:mu1 ~cols_log:nu)) (rx @ rk) in
          let b_eval =
            Ml.eval (Ml.of_evals (mle_table (transpose b) ~rows_log:mu2 ~cols_log:nu)) (ry @ rk)
          in
          Fr.equal proof.va a_eval && Fr.equal proof.vb b_eval
        end
    end
