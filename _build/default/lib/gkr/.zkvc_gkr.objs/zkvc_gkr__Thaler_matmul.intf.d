lib/gkr/thaler_matmul.mli: Zkvc_field
