lib/gkr/thaler_matmul.ml: Array List Zkvc_field Zkvc_poly Zkvc_spartan Zkvc_transcript
