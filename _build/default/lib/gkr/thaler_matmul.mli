(** Thaler's special-purpose sumcheck protocol for matrix multiplication
    (Thaler, CRYPTO 2013 — "Time-optimal interactive proofs for circuit
    evaluation"), the technique underlying the zkCNN family of interactive
    provers the paper compares against (its Figure 3/6 "zkCNN" line).

    To check [C = A·B] with [A : 2^µ1 × 2^ν], [B : 2^ν × 2^µ2], the
    verifier picks random [rx, ry] and the prover runs one ν-round
    sumcheck for

      [C̃(rx, ry) = Σ_{k ∈ {0,1}^ν} Ã(rx, k) · B̃(k, ry)],

    with O(n²) prover field work — no constraint system at all. Made
    non-interactive here by Fiat–Shamir. The protocol proves evaluation
    consistency relative to the inputs (the verifier evaluates Ã, B̃, C̃
    itself, or receives them through commitments in a full system); it is
    {e not} zero-knowledge — exactly the trade-off Table I records for the
    interactive schemes. *)

module Fr = Zkvc_field.Fr

type proof

val proof_size_bytes : proof -> int

(** [prove ~a ~b] for rectangular matrices (row arrays); dimensions are
    zero-padded to powers of two internally. Raises [Invalid_argument] on
    ragged or empty inputs. *)
val prove : a:Fr.t array array -> b:Fr.t array array -> proof

(** [verify ~a ~b ~c proof] — the verifier here re-evaluates the three
    matrix MLEs directly (O(n²) verifier, as when the matrices are public
    inputs). Sound against any wrong [c]. *)
val verify : a:Fr.t array array -> b:Fr.t array array -> c:Fr.t array array -> proof -> bool
