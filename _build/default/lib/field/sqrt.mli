(** Generic square roots in prime fields (Tonelli–Shanks, driven by the
    field's 2-adic root of unity). Works for any odd characteristic,
    including p ≡ 1 (mod 4) where the simple exponentiation trick fails. *)

module Make (F : Field_intf.S) : sig
  (** [sqrt a] is a square root of [a] when one exists ([None] for
      non-residues). Which of the two roots is returned is unspecified. *)
  val sqrt : F.t -> F.t option

  (** Euler criterion: true iff [a] is zero or a quadratic residue. *)
  val is_square : F.t -> bool
end
