(** Base field of BN254 — coordinate field of G1 and of the pairing tower. *)

include Field_intf.S
