(** Signature of a prime field, as consumed by every layer above
    ({!Zkvc_poly}, {!Zkvc_curve}, {!Zkvc_r1cs}, ...). *)

module type S = sig
  type t

  val modulus : Zkvc_num.Bigint.t

  (** Serialized size of one element, in bytes. *)
  val size_in_bytes : int

  val zero : t
  val one : t

  val of_int : int -> t

  (** Reduces the argument modulo the field characteristic. *)
  val of_bigint : Zkvc_num.Bigint.t -> t

  (** Canonical representative in [\[0, modulus)]. *)
  val to_bigint : t -> Zkvc_num.Bigint.t

  val of_string : string -> t
  val to_string : t -> string

  val equal : t -> t -> bool
  val is_zero : t -> bool
  val is_one : t -> bool

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val sqr : t -> t
  val double : t -> t

  (** Multiplicative inverse. Raises [Division_by_zero] on zero. *)
  val inv : t -> t

  val div : t -> t -> t

  (** [pow x e] with non-negative big-integer exponent [e]. *)
  val pow : t -> Zkvc_num.Bigint.t -> t

  val pow_int : t -> int -> t

  (** Largest [s] with [2^s | modulus - 1]; governs the radix-2 NTT size. *)
  val two_adicity : int

  (** An element of multiplicative order exactly [2^two_adicity]. *)
  val two_adic_root : t

  val random : Random.State.t -> t

  (** Fixed-width big-endian encoding, [size_in_bytes] long. *)
  val to_bytes : t -> Bytes.t

  (** Raises [Invalid_argument] on wrong length or non-canonical value. *)
  val of_bytes_exn : Bytes.t -> t

  val pp : Format.formatter -> t -> unit
end
