(** Fixed-width Montgomery-form prime field, generated from a modulus given
    in decimal. Elements are arrays of 26-bit limbs in native ints; the hot
    path (CIOS Montgomery multiplication) never allocates big integers. *)

module Make (M : sig
  (** Decimal representation of an odd prime. *)
  val modulus : string
end) : Field_intf.S
