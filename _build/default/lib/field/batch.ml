module Make (F : Field_intf.S) = struct
  let invert_all a =
    let n = Array.length a in
    if n > 0 then begin
      (* prefix.(i) = a.(0) * ... * a.(i) *)
      let prefix = Array.make n F.one in
      prefix.(0) <- a.(0);
      for i = 1 to n - 1 do
        prefix.(i) <- F.mul prefix.(i - 1) a.(i)
      done;
      let inv_all = ref (F.inv prefix.(n - 1)) in
      for i = n - 1 downto 1 do
        let ai = a.(i) in
        a.(i) <- F.mul !inv_all prefix.(i - 1);
        inv_all := F.mul !inv_all ai
      done;
      a.(0) <- !inv_all
    end
end
