(** Batch field inversion (Montgomery's trick): [n] inversions for the price
    of one inversion and [3n] multiplications. *)

module Make (F : Field_intf.S) : sig
  (** [invert_all a] inverts every element in place.
      Raises [Division_by_zero] if any element is zero. *)
  val invert_all : F.t array -> unit
end
