module Bigint = Zkvc_num.Bigint

module Make (F : Field_intf.S) = struct
  let p_minus_1 = Bigint.sub F.modulus Bigint.one

  (* p - 1 = odd_part · 2^two_adicity *)
  let odd_part = Bigint.shift_right p_minus_1 F.two_adicity

  let legendre_exp = Bigint.shift_right p_minus_1 1

  let is_square a = F.is_zero a || F.is_one (F.pow a legendre_exp)

  (* Tonelli–Shanks; the required order-2^s non-residue element is exactly
     the field's two-adic root of unity. *)
  let sqrt a =
    if F.is_zero a then Some F.zero
    else if not (F.is_one (F.pow a legendre_exp)) then None
    else begin
      let m = ref F.two_adicity in
      let c = ref F.two_adic_root in
      let t = ref (F.pow a odd_part) in
      let r =
        ref (F.pow a (Bigint.shift_right (Bigint.add odd_part Bigint.one) 1))
      in
      let rec loop () =
        if F.is_one !t then Some !r
        else begin
          (* least i with t^(2^i) = 1 *)
          let i = ref 0 and probe = ref !t in
          while not (F.is_one !probe) do
            probe := F.sqr !probe;
            incr i
          done;
          if !i >= !m then None (* unreachable for residues *)
          else begin
            let b = ref !c in
            for _ = 1 to !m - !i - 1 do
              b := F.sqr !b
            done;
            m := !i;
            c := F.sqr !b;
            t := F.mul !t !c;
            r := F.mul !r !b;
            loop ()
          end
        end
      in
      loop ()
    end
end
