lib/field/batch.mli: Field_intf
