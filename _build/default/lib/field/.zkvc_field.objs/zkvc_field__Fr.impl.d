lib/field/fr.ml: Montgomery
