lib/field/sqrt.ml: Field_intf Zkvc_num
