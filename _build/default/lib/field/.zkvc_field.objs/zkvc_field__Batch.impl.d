lib/field/batch.ml: Array Field_intf
