lib/field/fq.ml: Montgomery
