lib/field/montgomery.ml: Array Bytes Field_intf Format Zkvc_num
