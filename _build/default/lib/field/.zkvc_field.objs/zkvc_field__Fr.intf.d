lib/field/fr.mli: Field_intf
