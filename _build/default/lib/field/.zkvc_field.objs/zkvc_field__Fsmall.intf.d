lib/field/fsmall.mli: Field_intf
