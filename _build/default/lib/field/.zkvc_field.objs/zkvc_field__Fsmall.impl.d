lib/field/fsmall.ml: Bytes Format Int Random Zkvc_num
