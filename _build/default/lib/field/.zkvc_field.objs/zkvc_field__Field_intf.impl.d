lib/field/field_intf.ml: Bytes Format Random Zkvc_num
