lib/field/montgomery.mli: Field_intf
