lib/field/fq.mli: Field_intf
