lib/field/sqrt.mli: Field_intf
