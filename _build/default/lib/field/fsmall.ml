(** Small NTT-friendly prime field [p = 15 * 2^27 + 1 = 2013265921], with
    primitive root 31. Elements fit native ints, so property-based tests of
    polynomial / R1CS / sumcheck code run orders of magnitude faster here
    than over {!Fr}; every functorised layer is tested against both. *)

module Bigint = Zkvc_num.Bigint

type t = int (* canonical in [0, p) *)

let p = 2013265921
let modulus = Bigint.of_int p
let size_in_bytes = 4

let zero = 0
let one = 1

let of_int n =
  let v = n mod p in
  if v < 0 then v + p else v

let of_bigint n =
  match Bigint.to_int_opt (Bigint.erem n modulus) with
  | Some v -> v
  | None -> assert false

let to_bigint = Bigint.of_int
let of_string s = of_bigint (Bigint.of_string s)
let to_string = string_of_int

let equal = Int.equal
let is_zero a = a = 0
let is_one a = a = 1

let add a b =
  let s = a + b in
  if s >= p then s - p else s

let sub a b =
  let s = a - b in
  if s < 0 then s + p else s

let neg a = if a = 0 then 0 else p - a
let mul a b = a * b mod p
let sqr a = a * a mod p
let double a = add a a

let pow base e =
  if Bigint.sign e < 0 then invalid_arg "Fsmall.pow";
  let nb = Bigint.num_bits e in
  let acc = ref 1 in
  for i = nb - 1 downto 0 do
    acc := sqr !acc;
    if Bigint.bit e i then acc := mul !acc base
  done;
  !acc

let pow_int base e = pow base (Bigint.of_int e)

let inv a = if a = 0 then raise Division_by_zero else pow_int a (p - 2)
let div a b = mul a (inv b)

let two_adicity = 27

(* 31 generates the multiplicative group; 31^15 has order exactly 2^27. *)
let two_adic_root = pow_int 31 15

let random st = Random.State.full_int st p

let to_bytes a =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 ((a lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((a lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((a lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (a land 0xff);
  b

let of_bytes_exn b =
  if Bytes.length b <> 4 then invalid_arg "Fsmall.of_bytes_exn: bad length";
  let v =
    (Bytes.get_uint8 b 0 lsl 24)
    lor (Bytes.get_uint8 b 1 lsl 16)
    lor (Bytes.get_uint8 b 2 lsl 8)
    lor Bytes.get_uint8 b 3
  in
  if v >= p then invalid_arg "Fsmall.of_bytes_exn: not canonical";
  v

let pp fmt a = Format.pp_print_int fmt a
