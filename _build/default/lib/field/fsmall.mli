(** Small NTT-friendly prime field [p = 15 * 2^27 + 1 = 2013265921] used to
    speed up property-based tests of the generic layers. *)

include Field_intf.S
