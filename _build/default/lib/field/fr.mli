(** Scalar field of BN254 — the circuit field of zkVC. *)

include Field_intf.S
