lib/groth16/groth16.mli: Bytes Random Zkvc_curve Zkvc_field Zkvc_qap Zkvc_r1cs
