lib/groth16/groth16.ml: Array Bytes List Zkvc_curve Zkvc_field Zkvc_num Zkvc_qap Zkvc_r1cs Zkvc_transcript
