lib/kzg/kzg.mli: Random Zkvc_curve Zkvc_field Zkvc_poly
