lib/kzg/kzg.ml: Array Zkvc_curve Zkvc_field Zkvc_poly Zkvc_transcript
