(** KZG polynomial commitments (Kate–Zaverucha–Goldberg, ASIACRYPT 2010)
    over BN254: constant-size commitments and opening proofs, verified
    with one pairing equation.

    Two roles in this repository: (1) the binding weight commitment of the
    CRPC commit-then-challenge flow — the model owner commits to W once
    and every proof's challenge is derived from that commitment; (2) the
    commitment layer of the halo2/vCNN-style systems the paper compares
    against. *)

module Fr = Zkvc_field.Fr
module G1 = Zkvc_curve.G1
module G2 = Zkvc_curve.G2
module P : module type of Zkvc_poly.Dense_poly.Make (Fr)

type srs

(** Powers-of-tau setup supporting polynomials of degree ≤ [degree].
    The trapdoor τ is sampled from the PRNG and dropped. *)
val setup : Random.State.t -> degree:int -> srs

val max_degree : srs -> int

type commitment = G1.t

(** Constant-size (one G1 point) commitment.
    Raises [Invalid_argument] beyond the SRS degree. *)
val commit : srs -> P.t -> commitment

type opening =
  { point : Fr.t;
    value : Fr.t;
    witness : G1.t }

(** Opening proof for [p(point)]. *)
val open_at : srs -> P.t -> Fr.t -> opening

(** One pairing check: [e(C − value·G, G2) = e(W, τG2 − point·G2)]. *)
val verify : srs -> commitment -> opening -> bool

(** Commit to a weight matrix (rows flattened into one polynomial) — the
    reusable binding commitment for CRPC challenge derivation. *)
val commit_matrix : srs -> Fr.t array array -> commitment

(** Fiat–Shamir challenge bound to a weight commitment and the
    (public or claimed) X and Y matrices. *)
val derive_challenge :
  commitment -> x:Fr.t array array -> y:Fr.t array array -> Fr.t
