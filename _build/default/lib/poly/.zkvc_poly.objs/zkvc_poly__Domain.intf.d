lib/poly/domain.mli: Zkvc_field
