lib/poly/multilinear.ml: Array List Zkvc_field
