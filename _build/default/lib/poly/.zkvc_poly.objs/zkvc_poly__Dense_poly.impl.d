lib/poly/dense_poly.ml: Array Domain Format Stdlib Zkvc_field
