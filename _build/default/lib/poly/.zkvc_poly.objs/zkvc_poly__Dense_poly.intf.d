lib/poly/dense_poly.mli: Format Random Zkvc_field
