lib/poly/multilinear.mli: Zkvc_field
