lib/poly/domain.ml: Array Zkvc_field Zkvc_num
