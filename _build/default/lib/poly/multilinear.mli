(** Dense multilinear polynomials over the boolean hypercube, represented by
    their evaluation table. Variable 0 corresponds to the most significant
    bit of the table index; [fix_first] binds it, which is exactly the
    per-round folding step of the sumcheck prover in {!Zkvc_spartan}. *)

module Make (F : Zkvc_field.Field_intf.S) : sig
  type t

  (** Table length must be a power of two. *)
  val of_evals : F.t array -> t

  (** Constant-zero polynomial on [n] variables. *)
  val zero : int -> t

  val num_vars : t -> int

  (** Length [2^num_vars]. The returned array is a copy. *)
  val evals : t -> F.t array

  (** Direct table access, [get t i] for index [i] on the hypercube. *)
  val get : t -> int -> F.t

  (** Bind variable 0 to [r]: returns a polynomial on one fewer variable. *)
  val fix_first : t -> F.t -> t

  (** Evaluate at an arbitrary point (length must be [num_vars]). *)
  val eval : t -> F.t list -> F.t

  (** Sum of the table (the sumcheck target value). *)
  val sum : t -> F.t

  (** [eq_table tau] tabulates eq̃(tau, x) for x over the hypercube:
      eq̃(tau,x) = prod_i (tau_i x_i + (1-tau_i)(1-x_i)). *)
  val eq_table : F.t list -> t

  (** eq̃ evaluated at two arbitrary points of equal length. *)
  val eq_eval : F.t list -> F.t list -> F.t
end
