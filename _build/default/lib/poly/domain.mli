(** Radix-2 multiplicative evaluation domains (subgroups of the field's
    roots of unity) with forward/inverse NTT and coset evaluation. This is
    the engine behind QAP interpolation and the [h(x)] quotient computation
    in {!Zkvc_qap}. *)

module Make (F : Zkvc_field.Field_intf.S) : sig
  type t

  (** [create n] is the subgroup of size [n] (a power of two not exceeding
      [2^F.two_adicity]). Raises [Invalid_argument] otherwise. *)
  val create : int -> t

  val size : t -> int

  (** Generator of the subgroup. *)
  val omega : t -> F.t

  (** [element d i] is [omega^i]. *)
  val element : t -> int -> F.t

  (** In-place forward NTT: coefficients (length [size]) to evaluations over
      the domain, in natural order. *)
  val ntt : t -> F.t array -> unit

  (** In-place inverse NTT: evaluations to coefficients. *)
  val intt : t -> F.t array -> unit

  (** [eval_on_coset d shift coeffs] evaluates the polynomial on the coset
      [shift * H], in place. *)
  val eval_on_coset : t -> F.t -> F.t array -> unit

  (** Inverse of {!eval_on_coset}. *)
  val interp_from_coset : t -> F.t -> F.t array -> unit

  (** [vanishing_eval d x] is [x^size - 1], the vanishing polynomial of the
      domain at [x]. *)
  val vanishing_eval : t -> F.t -> F.t

  (** Barycentric evaluation at an arbitrary point of the polynomial whose
      values on the domain are [evals]. O(size) field operations. *)
  val lagrange_eval : t -> F.t array -> F.t -> F.t
end
