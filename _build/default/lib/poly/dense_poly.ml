module Make (F : Zkvc_field.Field_intf.S) = struct
  module D = Domain.Make (F)

  type t = F.t array (* no trailing zeros *)

  let normalize a =
    let n = ref (Array.length a) in
    while !n > 0 && F.is_zero a.(!n - 1) do decr n done;
    if !n = Array.length a then a else Array.sub a 0 !n

  let zero = [||]
  let constant c = normalize [| c |]
  let one = constant F.one

  let monomial k =
    let a = Array.make (k + 1) F.zero in
    a.(k) <- F.one;
    a

  let of_coeffs a = normalize (Array.copy a)
  let of_list l = normalize (Array.of_list l)
  let coeffs p = Array.copy p
  let coeff p i = if i < Array.length p then p.(i) else F.zero
  let degree p = Array.length p - 1
  let is_zero p = Array.length p = 0
  let equal a b = a = b

  let add a b =
    let la = Array.length a and lb = Array.length b in
    normalize (Array.init (Stdlib.max la lb) (fun i ->
        F.add (if i < la then a.(i) else F.zero) (if i < lb then b.(i) else F.zero)))

  let neg a = Array.map F.neg a

  let sub a b = add a (neg b)

  let scale c a = normalize (Array.map (F.mul c) a)

  let mul_schoolbook a b =
    if is_zero a || is_zero b then zero
    else begin
      let la = Array.length a and lb = Array.length b in
      let r = Array.make (la + lb - 1) F.zero in
      for i = 0 to la - 1 do
        if not (F.is_zero a.(i)) then
          for j = 0 to lb - 1 do
            r.(i + j) <- F.add r.(i + j) (F.mul a.(i) b.(j))
          done
      done;
      normalize r
    end

  let next_pow2 n =
    let rec go p = if p >= n then p else go (2 * p) in
    go 1

  let mul_ntt a b =
    if is_zero a || is_zero b then zero
    else begin
      let out_len = Array.length a + Array.length b - 1 in
      let n = next_pow2 out_len in
      if n > 1 lsl F.two_adicity then
        invalid_arg "Dense_poly.mul_ntt: product exceeds the field's NTT capacity";
      let d = D.create n in
      let pad x = Array.init n (fun i -> if i < Array.length x then x.(i) else F.zero) in
      let fa = pad a and fb = pad b in
      D.ntt d fa;
      D.ntt d fb;
      for i = 0 to n - 1 do
        fa.(i) <- F.mul fa.(i) fb.(i)
      done;
      D.intt d fa;
      normalize (Array.sub fa 0 out_len)
    end

  let ntt_threshold = 64

  let mul a b =
    let out_len = Array.length a + Array.length b - 1 in
    if out_len <= ntt_threshold || next_pow2 out_len > 1 lsl F.two_adicity
    then mul_schoolbook a b
    else mul_ntt a b

  let divmod a b =
    if is_zero b then raise Division_by_zero;
    let db = degree b in
    let lead_inv = F.inv b.(db) in
    let r = Array.copy a in
    let dq = degree a - db in
    if dq < 0 then (zero, normalize r)
    else begin
      let q = Array.make (dq + 1) F.zero in
      for i = dq downto 0 do
        let c = F.mul r.(i + db) lead_inv in
        q.(i) <- c;
        if not (F.is_zero c) then
          for j = 0 to db do
            r.(i + j) <- F.sub r.(i + j) (F.mul c b.(j))
          done
      done;
      (normalize q, normalize r)
    end

  let eval p x =
    let acc = ref F.zero in
    for i = Array.length p - 1 downto 0 do
      acc := F.add (F.mul !acc x) p.(i)
    done;
    !acc

  let interpolate points =
    let pts = Array.of_list points in
    let n = Array.length pts in
    Array.iteri (fun i (xi, _) ->
        Array.iteri (fun j (xj, _) ->
            if i < j && F.equal xi xj then invalid_arg "Dense_poly.interpolate: duplicate x")
          pts)
      pts;
    let acc = ref zero in
    for i = 0 to n - 1 do
      let xi, yi = pts.(i) in
      (* basis_i = prod_{j<>i} (x - x_j)/(x_i - x_j) *)
      let num = ref (constant F.one) and den = ref F.one in
      for j = 0 to n - 1 do
        if j <> i then begin
          let xj, _ = pts.(j) in
          num := mul_schoolbook !num (of_list [ F.neg xj; F.one ]);
          den := F.mul !den (F.sub xi xj)
        end
      done;
      acc := add !acc (scale (F.div yi !den) !num)
    done;
    !acc

  let random st ~degree =
    if degree < 0 then zero
    else begin
      let a = Array.init (degree + 1) (fun _ -> F.random st) in
      (* force the exact requested degree *)
      while F.is_zero a.(degree) do
        a.(degree) <- F.random st
      done;
      a
    end

  let pp fmt p =
    if is_zero p then Format.pp_print_string fmt "0"
    else
      Array.iteri
        (fun i c ->
          if not (F.is_zero c) then begin
            if i > 0 then Format.fprintf fmt " + ";
            Format.fprintf fmt "%a*x^%d" F.pp c i
          end)
        p
end
