(** Dense univariate polynomials over a prime field, coefficients stored
    lowest-degree first. Multiplication switches from schoolbook to NTT when
    operands are large and the field supports a big-enough radix-2 domain —
    the optimisation CRPC relies on for its "matmul as polynomial
    multiplication" encoding. *)

module Make (F : Zkvc_field.Field_intf.S) : sig
  type t

  val zero : t
  val one : t
  val constant : F.t -> t

  (** [x^k] with coefficient 1. *)
  val monomial : int -> t

  (** Trailing zero coefficients are stripped. *)
  val of_coeffs : F.t array -> t

  val of_list : F.t list -> t

  (** Lowest degree first; the zero polynomial yields [[||]]. *)
  val coeffs : t -> F.t array

  (** [coeff p i] is the coefficient of [x^i] (zero beyond the degree). *)
  val coeff : t -> int -> F.t

  (** Degree of the zero polynomial is -1 by convention. *)
  val degree : t -> int

  val is_zero : t -> bool
  val equal : t -> t -> bool

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val scale : F.t -> t -> t
  val mul : t -> t -> t

  (** Forced quadratic algorithm (exposed for the ablation bench). *)
  val mul_schoolbook : t -> t -> t

  (** Forced NTT algorithm. Raises [Invalid_argument] when the product
      does not fit in the field's maximal radix-2 domain. *)
  val mul_ntt : t -> t -> t

  (** [divmod a b] is [(q, r)] with [a = q*b + r] and [deg r < deg b].
      Raises [Division_by_zero] when [b] is zero. *)
  val divmod : t -> t -> t * t

  val eval : t -> F.t -> F.t

  (** Lagrange interpolation through distinct points [(x_i, y_i)]; O(n²).
      Raises [Invalid_argument] on duplicate abscissae. *)
  val interpolate : (F.t * F.t) list -> t

  val random : Random.State.t -> degree:int -> t

  val pp : Format.formatter -> t -> unit
end
