module Make (F : Zkvc_field.Field_intf.S) = struct
  type t = { nvars : int; table : F.t array }

  let of_evals a =
    let n = Array.length a in
    if n = 0 || n land (n - 1) <> 0 then
      invalid_arg "Multilinear.of_evals: length must be a power of two";
    let nvars =
      let rec go k p = if p = n then k else go (k + 1) (2 * p) in
      go 0 1
    in
    { nvars; table = Array.copy a }

  let zero n = { nvars = n; table = Array.make (1 lsl n) F.zero }

  let num_vars t = t.nvars
  let evals t = Array.copy t.table
  let get t i = t.table.(i)

  let fix_first t r =
    if t.nvars = 0 then invalid_arg "Multilinear.fix_first: no variables left";
    let half = Array.length t.table / 2 in
    let table =
      Array.init half (fun i ->
          let lo = t.table.(i) and hi = t.table.(i + half) in
          F.add lo (F.mul r (F.sub hi lo)))
    in
    { nvars = t.nvars - 1; table }

  let eval t point =
    if List.length point <> t.nvars then invalid_arg "Multilinear.eval: wrong arity";
    let final = List.fold_left fix_first t point in
    final.table.(0)

  let sum t = Array.fold_left F.add F.zero t.table

  (* Standard doubling construction: extend the table one variable at a
     time, splitting each entry into (1-tau_i)-weighted and tau_i-weighted
     halves. *)
  let eq_table tau =
    let nvars = List.length tau in
    let table = Array.make (1 lsl nvars) F.zero in
    table.(0) <- F.one;
    let size = ref 1 in
    (* Process tau back to front so that the first entry (variable 0) ends
       up on the most significant index bit, matching [eval]/[fix_first]. *)
    List.iter
      (fun ti ->
        for i = !size - 1 downto 0 do
          let v = table.(i) in
          let hi = F.mul v ti in
          table.(i + !size) <- hi;
          table.(i) <- F.sub v hi
        done;
        size := 2 * !size)
      (List.rev tau);
    { nvars; table }

  let eq_eval a b =
    if List.length a <> List.length b then invalid_arg "Multilinear.eq_eval: arity mismatch";
    List.fold_left2
      (fun acc x y ->
        let xy = F.mul x y in
        (* x*y + (1-x)*(1-y) = 1 - x - y + 2xy *)
        F.mul acc (F.add (F.sub (F.sub F.one x) y) (F.double xy)))
      F.one a b
end
