lib/hashing/merkle.ml: Array Bytes Lazy List Sha256
