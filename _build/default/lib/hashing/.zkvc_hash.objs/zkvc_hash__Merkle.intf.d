lib/hashing/merkle.mli: Bytes
