(** SHA-256 (FIPS 180-4), implemented from the specification because no
    cryptographic package is available offline. Used for Fiat–Shamir
    transcripts, commitments and Merkle trees. *)

type ctx

val init : unit -> ctx

(** Feed more data; contexts are mutable. *)
val update : ctx -> Bytes.t -> unit

val update_string : ctx -> string -> unit

(** Finalise and return the 32-byte digest. The context must not be used
    afterwards. *)
val finalize : ctx -> Bytes.t

(** One-shot digest of a byte string. *)
val digest : Bytes.t -> Bytes.t

val digest_string : string -> Bytes.t

(** Lowercase hex of [digest_string]. *)
val hex_of_string : string -> string

val to_hex : Bytes.t -> string
