(** Binary Merkle tree over SHA-256, with authentication paths. Leaves are
    arbitrary byte strings; the tree is padded to a power of two with the
    hash of the empty string. Domain separation: leaves are hashed with a
    [0x00] prefix and internal nodes with [0x01], preventing second-preimage
    splices between levels. *)

type t

val of_leaves : Bytes.t list -> t

val root : t -> Bytes.t

val num_leaves : t -> int

(** Authentication path (sibling hashes, leaf level first) for leaf [i].
    Raises [Invalid_argument] when out of range. *)
val path : t -> int -> Bytes.t list

(** [verify ~root ~leaf ~index ~path] checks an authentication path. *)
val verify : root:Bytes.t -> leaf:Bytes.t -> index:int -> path:Bytes.t list -> bool
