type t =
  { levels : Bytes.t array array; (* levels.(0) = hashed leaves, last = [| root |] *)
    num_leaves : int }

let hash_leaf data =
  let ctx = Sha256.init () in
  Sha256.update_string ctx "\x00";
  Sha256.update ctx data;
  Sha256.finalize ctx

let hash_node left right =
  let ctx = Sha256.init () in
  Sha256.update_string ctx "\x01";
  Sha256.update ctx left;
  Sha256.update ctx right;
  Sha256.finalize ctx

let empty_leaf_hash = lazy (hash_leaf Bytes.empty)

let next_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 1

let of_leaves leaves =
  let num_leaves = List.length leaves in
  if num_leaves = 0 then invalid_arg "Merkle.of_leaves: empty";
  let width = next_pow2 num_leaves in
  let level0 = Array.make width (Lazy.force empty_leaf_hash) in
  List.iteri (fun i leaf -> level0.(i) <- hash_leaf leaf) leaves;
  let rec build acc level =
    if Array.length level = 1 then List.rev (level :: acc)
    else begin
      let parent =
        Array.init (Array.length level / 2) (fun i ->
            hash_node level.(2 * i) level.((2 * i) + 1))
      in
      build (level :: acc) parent
    end
  in
  { levels = Array.of_list (build [] level0); num_leaves }

let root t =
  let top = t.levels.(Array.length t.levels - 1) in
  top.(0)

let num_leaves t = t.num_leaves

let path t i =
  if i < 0 || i >= t.num_leaves then invalid_arg "Merkle.path: index out of range";
  let rec go level idx acc =
    if level >= Array.length t.levels - 1 then List.rev acc
    else begin
      let sibling = t.levels.(level).(idx lxor 1) in
      go (level + 1) (idx / 2) (sibling :: acc)
    end
  in
  go 0 i []

let verify ~root:expected ~leaf ~index ~path =
  let rec go node idx = function
    | [] -> Bytes.equal node expected
    | sibling :: rest ->
      let node =
        if idx land 1 = 0 then hash_node node sibling else hash_node sibling node
      in
      go node (idx / 2) rest
  in
  go (hash_leaf leaf) index path
