(** Generic sumcheck protocol (Lund–Fortnow–Karloff–Nisan), made
    non-interactive with the Fiat–Shamir transcript. The prover holds [k]
    equal-size multilinear tables and proves a claim about
    [Σ_{x ∈ {0,1}^µ} combine(t₁(x), ..., t_k(x))], where [combine] has
    total degree [degree] in the table values. *)

module Make (F : Zkvc_field.Field_intf.S) : sig
  (** One round message: evaluations of the round polynomial at
      0, 1, ..., degree. *)
  type round = F.t array

  type proof = round list

  (** Lagrange evaluation of a degree-d polynomial given its values at
      0..d. Exposed for the verifier-side final checks. *)
  val interpolate_at : F.t array -> F.t -> F.t

  (** Returns (round messages, challenges, final value of each table at
      the challenge point). Inputs are not mutated. *)
  val prove :
    Zkvc_transcript.Transcript.t ->
    label:string ->
    degree:int ->
    F.t array array ->
    combine:(F.t array -> F.t) ->
    proof * F.t list * F.t array

  (** Replays the transcript, checking [s_j(0) + s_j(1) = claim_j] each
      round. [Some (final_claim, challenges)] on success. *)
  val verify :
    Zkvc_transcript.Transcript.t ->
    label:string ->
    degree:int ->
    claim:F.t ->
    proof ->
    (F.t * F.t list) option
end
