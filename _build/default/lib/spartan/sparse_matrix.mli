(** Sparse matrices over a field viewed as multilinear extensions
    Ã(x, y) on {0,1}^µ × {0,1}^ν — the representation Spartan's two
    sumcheck phases work with. *)

module Make (F : Zkvc_field.Field_intf.S) : sig
  type entry = { row : int; col : int; value : F.t }

  type t

  (** [create ~mu ~nu entries]: 2^µ rows by 2^ν columns. Raises
      [Invalid_argument] on out-of-range entries. *)
  val create : mu:int -> nu:int -> entry list -> t

  val num_nonzero : t -> int

  (** [mul_vec t z] is the length-2^µ vector [M·z]. *)
  val mul_vec : t -> F.t array -> F.t array

  (** [fold_rows t w] is the length-2^ν vector [wᵀ·M] — used to build the
      phase-two sumcheck table [y ↦ Σ_x eq̃(rx,x)·M̃(x,y)]. *)
  val fold_rows : t -> F.t array -> F.t array

  (** Direct evaluation of the MLE at an arbitrary point in
      O(nnz·(µ+ν)) — the SpartanNIZK verifier's work. *)
  val eval : t -> rx:F.t list -> ry:F.t list -> F.t
end
