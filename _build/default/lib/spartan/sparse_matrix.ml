(** Sparse matrices over a field, viewed as multilinear extensions
    Ã(x, y) on {0,1}^µ × {0,1}^ν — the representation Spartan's two
    sumcheck phases work with. *)

module Make (F : Zkvc_field.Field_intf.S) = struct
  module M = Zkvc_poly.Multilinear.Make (F)

  type entry = { row : int; col : int; value : F.t }

  type t =
    { mu : int; (* log2 rows *)
      nu : int; (* log2 cols *)
      entries : entry list }

  let create ~mu ~nu entries =
    List.iter
      (fun { row; col; _ } ->
        if row < 0 || row >= 1 lsl mu || col < 0 || col >= 1 lsl nu then
          invalid_arg "Sparse_matrix.create: entry out of range")
      entries;
    { mu; nu; entries }

  let num_nonzero t = List.length t.entries

  (** [mul_vec t z] is the length-2^µ vector [M·z]. *)
  let mul_vec t z =
    if Array.length z <> 1 lsl t.nu then invalid_arg "Sparse_matrix.mul_vec: length";
    let out = Array.make (1 lsl t.mu) F.zero in
    List.iter
      (fun { row; col; value } -> out.(row) <- F.add out.(row) (F.mul value z.(col)))
      t.entries;
    out

  (** Fold the rows with weights [w] (length 2^µ): returns the length-2^ν
      vector [wᵀ·M]. Used to build the phase-two sumcheck table
      [y ↦ Σ_x eq̃(rx,x) M̃(x,y)]. *)
  let fold_rows t w =
    if Array.length w <> 1 lsl t.mu then invalid_arg "Sparse_matrix.fold_rows: length";
    let out = Array.make (1 lsl t.nu) F.zero in
    List.iter
      (fun { row; col; value } -> out.(col) <- F.add out.(col) (F.mul value w.(row)))
      t.entries;
    out

  (** Direct evaluation of the MLE at an arbitrary point, in
      O(nnz · (µ + ν)): Ã(rx, ry) = Σ entries value·χ_row(rx)·χ_col(ry).
      This is the O(n) verifier of SpartanNIZK. *)
  let eval t ~rx ~ry =
    if List.length rx <> t.mu || List.length ry <> t.nu then
      invalid_arg "Sparse_matrix.eval: arity";
    let chi point nbits idx =
      (* variable 0 = most significant bit, matching Multilinear *)
      let acc = ref F.one in
      List.iteri
        (fun i r ->
          let bit = (idx lsr (nbits - 1 - i)) land 1 in
          acc := F.mul !acc (if bit = 1 then r else F.sub F.one r))
        point;
      !acc
    in
    List.fold_left
      (fun acc { row; col; value } ->
        F.add acc (F.mul value (F.mul (chi rx t.mu row) (chi ry t.nu col))))
      F.zero t.entries
end
