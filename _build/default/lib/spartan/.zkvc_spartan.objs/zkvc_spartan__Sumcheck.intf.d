lib/spartan/sumcheck.mli: Zkvc_field Zkvc_transcript
