lib/spartan/pedersen.mli: Zkvc_curve Zkvc_field
