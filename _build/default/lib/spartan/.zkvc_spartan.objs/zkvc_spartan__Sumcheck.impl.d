lib/spartan/sumcheck.ml: Array List Zkvc_field Zkvc_transcript
