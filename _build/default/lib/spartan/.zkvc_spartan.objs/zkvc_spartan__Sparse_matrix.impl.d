lib/spartan/sparse_matrix.ml: Array List Zkvc_field Zkvc_poly
