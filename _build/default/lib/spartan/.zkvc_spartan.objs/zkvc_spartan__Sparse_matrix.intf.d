lib/spartan/sparse_matrix.mli: Zkvc_field
