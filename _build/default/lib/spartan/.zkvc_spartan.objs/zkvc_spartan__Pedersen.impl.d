lib/spartan/pedersen.ml: Array Zkvc_curve Zkvc_field Zkvc_hash Zkvc_num
