lib/spartan/spartan.mli: Random Zkvc_field Zkvc_r1cs
