lib/spartan/ipa.ml: Array List Pedersen Zkvc_curve Zkvc_field Zkvc_transcript
