lib/spartan/spartan.ml: Array Ipa List Pedersen Sparse_matrix Stdlib Sumcheck Zkvc_curve Zkvc_field Zkvc_poly Zkvc_r1cs Zkvc_transcript
