lib/spartan/ipa.mli: Pedersen Zkvc_curve Zkvc_field Zkvc_transcript
