lib/transcript/transcript.ml: Array Bytes List String Zkvc_field Zkvc_hash Zkvc_num
