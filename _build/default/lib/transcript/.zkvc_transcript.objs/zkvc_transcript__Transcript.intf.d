lib/transcript/transcript.mli: Bytes Zkvc_field
