(** Fiat–Shamir transcript. The prover and the verifier both replay the same
    sequence of labelled absorptions; challenges are then a deterministic
    function of everything absorbed so far, which turns the interactive
    protocols (sumcheck, CRPC challenge, Hyrax opening) into non-interactive
    ones in the random-oracle model. Built on {!Zkvc_hash.Sha256}. *)

type t

(** Fresh transcript, domain-separated by [label]. *)
val create : label:string -> t

(** Independent copy (used by tests to simulate prover/verifier replay). *)
val clone : t -> t

val absorb_bytes : t -> label:string -> Bytes.t -> unit
val absorb_string : t -> label:string -> string -> unit
val absorb_int : t -> label:string -> int -> unit

(** 32 bytes of challenge material, bound to all previous absorptions. *)
val challenge_bytes : t -> label:string -> Bytes.t

(** Field-element absorption and uniform challenge derivation. *)
module Challenge (F : Zkvc_field.Field_intf.S) : sig
  val absorb : t -> label:string -> F.t -> unit
  val absorb_list : t -> label:string -> F.t list -> unit
  val absorb_array : t -> label:string -> F.t array -> unit

  (** Uniform element of [F] (512 bits of hash output reduced mod [F.modulus],
      bias below 2^-256). *)
  val challenge : t -> label:string -> F.t

  val challenges : t -> label:string -> int -> F.t list
end
