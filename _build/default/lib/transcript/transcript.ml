module Sha256 = Zkvc_hash.Sha256
module Bigint = Zkvc_num.Bigint

type t = { mutable state : Bytes.t; mutable counter : int }

(* state' = H(state || tag || label-length || label || payload) keeps the
   encoding prefix-free, so distinct absorption sequences cannot collide. *)
let mix state tag label payload =
  let ctx = Sha256.init () in
  Sha256.update ctx state;
  Sha256.update_string ctx tag;
  Sha256.update_string ctx (string_of_int (String.length label));
  Sha256.update_string ctx "|";
  Sha256.update_string ctx label;
  Sha256.update ctx payload;
  Sha256.finalize ctx

let create ~label =
  { state = mix (Bytes.make 32 '\000') "init" label Bytes.empty; counter = 0 }

let clone t = { state = Bytes.copy t.state; counter = t.counter }

let absorb_bytes t ~label data = t.state <- mix t.state "absorb" label data

let absorb_string t ~label s = absorb_bytes t ~label (Bytes.of_string s)

let absorb_int t ~label n = absorb_string t ~label (string_of_int n)

let challenge_bytes t ~label =
  t.counter <- t.counter + 1;
  let out = mix t.state "challenge" label (Bytes.of_string (string_of_int t.counter)) in
  t.state <- out;
  out

module Challenge (F : Zkvc_field.Field_intf.S) = struct
  let absorb t ~label x = absorb_bytes t ~label (F.to_bytes x)

  let absorb_list t ~label xs =
    absorb_int t ~label:(label ^ "/len") (List.length xs);
    List.iter (fun x -> absorb t ~label x) xs

  let absorb_array t ~label xs =
    absorb_int t ~label:(label ^ "/len") (Array.length xs);
    Array.iter (fun x -> absorb t ~label x) xs

  let challenge t ~label =
    let b1 = challenge_bytes t ~label in
    let b2 = challenge_bytes t ~label:(label ^ "/hi") in
    let wide = Bytes.cat b1 b2 in
    F.of_bigint (Bigint.of_bytes_be wide)

  let challenges t ~label n = List.init n (fun i -> challenge t ~label:(label ^ string_of_int i))
end
