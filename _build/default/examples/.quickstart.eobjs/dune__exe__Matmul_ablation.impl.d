examples/matmul_ablation.ml: Array Format List Printf Zkvc Zkvc_field Zkvc_r1cs
