examples/vit_inference.mli:
