examples/softmax_attention.ml: Array List Printf Random Sys Zkvc Zkvc_field Zkvc_groth16 Zkvc_nn Zkvc_r1cs Zkvc_spartan Zkvc_zkml
