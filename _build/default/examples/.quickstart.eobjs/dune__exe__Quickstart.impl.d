examples/quickstart.ml: Format Printf Random Zkvc Zkvc_field
