examples/vit_inference.ml: Array Format List Printf Random Sys Zkvc Zkvc_field Zkvc_groth16 Zkvc_nn Zkvc_r1cs Zkvc_zkml
