examples/matmul_ablation.mli:
