examples/quickstart.mli:
