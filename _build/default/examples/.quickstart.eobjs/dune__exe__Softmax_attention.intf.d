examples/softmax_attention.mli:
