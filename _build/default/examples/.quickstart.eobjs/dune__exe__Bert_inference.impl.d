examples/bert_inference.ml: List Printf Random String Zkvc Zkvc_field Zkvc_nn Zkvc_zkml
